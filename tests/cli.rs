//! Integration tests for the `qsmt` CLI binary: the interface a
//! downstream user scripts against.

use std::process::Command;

fn qsmt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsmt"))
}

fn corpus(name: &str) -> String {
    format!("{}/benchmarks/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn solve_deterministic_corpus_file() {
    let out = qsmt()
        .args(["solve", &corpus("table1_row1_reverse_replace.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("sat"), "got: {stdout}");
    assert!(stdout.contains("\"ollah\""));
}

#[test]
fn solve_with_alternate_samplers() {
    for sampler in ["sqa", "pt", "tabu", "descent", "population"] {
        let out = qsmt()
            .args([
                "solve",
                &corpus("table1_row1_reverse_replace.smt2"),
                "--sampler",
                sampler,
                "--reads",
                "16",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "sampler {sampler} failed");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            stdout.contains("\"ollah\""),
            "sampler {sampler} wrong answer: {stdout}"
        );
    }
}

#[test]
fn exact_sampler_solves_small_goals_and_rejects_large_ones_gracefully() {
    // 7 indicator variables: well inside the exact enumerator's limit.
    let out = qsmt()
        .args(["solve", &corpus("indexof_query.smt2"), "--sampler", "exact"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("6"), "indexof answer: {stdout}");

    // 35 string bits: beyond the limit — a clean error, not a crash.
    let out = qsmt()
        .args([
            "solve",
            &corpus("table1_row1_reverse_replace.smt2"),
            "--sampler",
            "exact",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("cannot solve"), "stderr: {stderr}");
}

#[test]
fn unsat_corpus_file_reports_unsat() {
    let out = qsmt()
        .args(["solve", &corpus("unsat_regex_length.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout.trim(), "unsat");
}

#[test]
fn dump_emits_qbsolv_format_that_round_trips() {
    let out = qsmt()
        .args(["dump", &corpus("table1_row2_palindrome.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("p qubo 0 42"), "header missing: {stdout}");
    let model = qsmt::qubo::from_qbsolv(&stdout).expect("dump output parses back");
    assert_eq!(model.num_vars(), 42);
    assert!(model.num_interactions() > 0, "palindrome has couplings");
}

#[test]
fn demo_solves_all_rows() {
    let out = qsmt()
        .args(["demo", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("sat"));
    assert!(stdout.contains("row1"));
    assert!(stdout.contains("\"hexxo worxd\""));
}

#[test]
fn solve_trace_writes_chrome_json_sharing_the_report_trace_id() {
    use qsmt::telemetry::Json;
    let dir = std::env::temp_dir();
    let trace_path = dir.join(format!("qsmt-cli-trace-{}.json", std::process::id()));
    let report_path = dir.join(format!("qsmt-cli-report-{}.json", std::process::id()));
    let out = qsmt()
        .args([
            "solve",
            &corpus("table1_row1_reverse_replace.smt2"),
            "--seed",
            "3",
            "--trace",
            trace_path.to_str().expect("utf8 path"),
            "--report",
            report_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace file is Chrome trace-event JSON: a traceEvents array of
    // complete ("X") events carrying nesting depth, one per report stage
    // plus one per sampler read.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let doc = qsmt::telemetry::parse(&trace_text).expect("trace is valid JSON");
    let trace_id = doc
        .get("trace_id")
        .and_then(Json::as_str)
        .expect("trace document names its trace id")
        .to_string();
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for span in [
        "compile", "lint", "presolve", "embed", "sample", "select", "read 0",
    ] {
        assert!(names.contains(&span), "missing {span} span in {names:?}");
    }
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("args")
                    .and_then(|a| a.get("depth"))
                    .and_then(Json::as_u64)
                    .is_some_and(|d| d >= 1)
        }),
        "no nested complete event in {trace_text}"
    );

    // The schema-v8 report names the same trace and carries the
    // per-stage span_us rollup `qsmt history` consumes.
    let report_text = std::fs::read_to_string(&report_path).expect("report written");
    let report = qsmt::telemetry::parse(&report_text).expect("report is valid JSON");
    assert_eq!(report.get("schema_version").and_then(Json::as_u64), Some(9));
    assert_eq!(
        report.get("trace_id").and_then(Json::as_str),
        Some(trace_id.as_str()),
        "report and trace disagree on the trace id"
    );
    assert!(
        matches!(report.get("span_us"), Some(Json::Obj(map)) if !map.is_empty()),
        "report lacks a populated span_us rollup: {report_text}"
    );
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&report_path);
}

#[test]
fn history_flags_injected_regression_and_exits_nonzero() {
    let path = std::env::temp_dir().join(format!("qsmt-cli-history-{}.jsonl", std::process::id()));
    // 20 steady runs, then 5 whose sample-stage p50 drifted +160%: far
    // past the default 25% gate, flagged on exactly that stage.
    let steady = "{\"schema_version\": 8, \"span_us\": {\"compile\": 100, \"sample\": 1000}}\n";
    let drifted = "{\"schema_version\": 8, \"span_us\": {\"compile\": 100, \"sample\": 2600}}\n";
    let mut lines = steady.repeat(20);
    lines.push_str(&drifted.repeat(5));
    std::fs::write(&path, &lines).expect("store written");

    let out = qsmt()
        .args(["history", path.to_str().expect("utf8 path")])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "drifted history must exit non-zero");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("REGRESSION sample"), "stdout: {stdout}");
    assert!(
        !stdout.contains("REGRESSION compile"),
        "steady stage wrongly flagged: {stdout}"
    );
    assert!(
        stdout.contains("p50_us"),
        "percentile table missing: {stdout}"
    );

    // A threshold looser than the drift downgrades it to a clean exit.
    let out = qsmt()
        .args([
            "history",
            path.to_str().expect("utf8 path"),
            "--threshold",
            "200",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "loose threshold should pass");
    let _ = std::fs::remove_file(&path);

    // A missing store is an empty history, not an error.
    let out = qsmt()
        .args(["history", "/nonexistent/store.jsonl"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("no runs recorded"), "stdout: {stdout}");
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let out = qsmt().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("USAGE"));

    let out = qsmt()
        .args(["solve", "/nonexistent/file.smt2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = qsmt()
        .args(["demo", "--sampler", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown sampler"));
}

#[test]
fn watch_unreachable_target_exits_nonzero_fast() {
    // `qsmt watch` doubles as a health probe: an unreachable scrape
    // target must produce a prompt non-zero exit with the address in
    // the error, not a hang (a hung probe reads as healthy to most
    // supervisors). Port 1 is essentially never listening.
    let started = std::time::Instant::now();
    let out = qsmt()
        .args(["watch", "127.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "watch against a dead endpoint must exit non-zero"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains("127.0.0.1:1"), "stderr: {stderr}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "watch took {:?}; connect timeout is not bounding the probe",
        started.elapsed()
    );
}

#[test]
fn serve_and_submit_reject_bad_flag_values() {
    for args in [
        ["serve", "--metrics-addr", "127.0.0.1:0", "--workers", "0"],
        [
            "serve",
            "--metrics-addr",
            "127.0.0.1:0",
            "--queue-depth",
            "0",
        ],
        [
            "serve",
            "--metrics-addr",
            "127.0.0.1:0",
            "--job-timeout",
            "0",
        ],
    ] {
        let out = qsmt().args(args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} should be rejected");
    }

    // submit without enough positional arguments prints usage.
    let out = qsmt().args(["submit"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}
