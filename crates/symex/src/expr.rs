//! The symbolic string expression language and program model.

/// A symbolic string expression over one input variable.
///
/// Every constructor has an affine, statically-known length, so the
/// engine can compute the concrete length of any expression from the
/// program's declared input length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// The symbolic input string.
    Input,
    /// Reversal of a subexpression (§4.9 of the paper).
    Rev(Box<Expr>),
    /// A literal appended after a subexpression.
    Append(Box<Expr>, String),
    /// A literal prepended before a subexpression.
    Prepend(String, Box<Expr>),
    /// Character-for-character replacement (§4.7). Pullback through this
    /// node is only sound for conditions that avoid both characters; the
    /// engine otherwise falls back to concrete filtering.
    ReplaceAll(Box<Expr>, char, char),
}

impl Expr {
    /// The symbolic input.
    pub fn input() -> Expr {
        Expr::Input
    }

    /// Reverses this expression.
    pub fn rev(self) -> Expr {
        Expr::Rev(Box::new(self))
    }

    /// Appends a literal suffix.
    pub fn append(self, suffix: impl Into<String>) -> Expr {
        Expr::Append(Box::new(self), suffix.into())
    }

    /// Prepends a literal prefix.
    pub fn prepend(self, prefix: impl Into<String>) -> Expr {
        Expr::Prepend(prefix.into(), Box::new(self))
    }

    /// Replaces every `from` with `to`.
    pub fn replace_all(self, from: char, to: char) -> Expr {
        Expr::ReplaceAll(Box::new(self), from, to)
    }

    /// Concretely evaluates the expression on an input string.
    pub fn eval(&self, input: &str) -> String {
        match self {
            Expr::Input => input.to_string(),
            Expr::Rev(e) => e.eval(input).chars().rev().collect(),
            Expr::Append(e, s) => {
                let mut v = e.eval(input);
                v.push_str(s);
                v
            }
            Expr::Prepend(s, e) => {
                let mut v = s.clone();
                v.push_str(&e.eval(input));
                v
            }
            Expr::ReplaceAll(e, from, to) => e.eval(input).replace(*from, &to.to_string()),
        }
    }

    /// The length of this expression's value given the input length.
    pub fn len(&self, input_len: usize) -> usize {
        match self {
            Expr::Input => input_len,
            Expr::Rev(e) | Expr::ReplaceAll(e, _, _) => e.len(input_len),
            Expr::Append(e, s) => e.len(input_len) + s.len(),
            Expr::Prepend(s, e) => s.len() + e.len(input_len),
        }
    }
}

/// A branch predicate over a symbolic expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cond {
    /// The expression equals a literal.
    Eq(Expr, String),
    /// The expression contains a literal substring.
    Contains(Expr, String),
    /// The expression starts with a literal.
    StartsWith(Expr, String),
    /// The expression ends with a literal.
    EndsWith(Expr, String),
    /// The expression matches a regex (anchored, `qsmt-redex` syntax).
    Matches(Expr, String),
}

impl Cond {
    /// Concretely evaluates the condition on an input string.
    ///
    /// # Errors
    /// Returns the regex syntax error message for malformed patterns in
    /// [`Cond::Matches`].
    pub fn eval(&self, input: &str) -> Result<bool, String> {
        Ok(match self {
            Cond::Eq(e, lit) => e.eval(input) == *lit,
            Cond::Contains(e, lit) => e.eval(input).contains(lit.as_str()),
            Cond::StartsWith(e, lit) => e.eval(input).starts_with(lit.as_str()),
            Cond::EndsWith(e, lit) => e.eval(input).ends_with(lit.as_str()),
            Cond::Matches(e, pattern) => {
                let re = qsmt_redex::parse(pattern).map_err(|err| err.to_string())?;
                qsmt_redex::Nfa::compile(&re).matches(&e.eval(input))
            }
        })
    }

    /// The expression this condition constrains.
    pub fn expr(&self) -> &Expr {
        match self {
            Cond::Eq(e, _)
            | Cond::Contains(e, _)
            | Cond::StartsWith(e, _)
            | Cond::EndsWith(e, _)
            | Cond::Matches(e, _) => e,
        }
    }
}

/// A named branch: a conjunction of `(condition, polarity)` literals that
/// must all hold (polarity `false` = negated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// Branch label (reported in coverage).
    pub name: String,
    /// The path condition.
    pub literals: Vec<(Cond, bool)>,
}

/// A program under symbolic test: an input length plus a set of branches
/// to cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Length of the symbolic input string.
    pub input_len: usize,
    /// Branches to cover.
    pub branches: Vec<Branch>,
}

impl Program {
    /// Creates a program with the given symbolic input length.
    pub fn new(name: impl Into<String>, input_len: usize) -> Self {
        Self {
            name: name.into(),
            input_len,
            branches: Vec::new(),
        }
    }

    /// Adds a branch with its path condition.
    pub fn branch(mut self, name: impl Into<String>, literals: Vec<(Cond, bool)>) -> Self {
        self.branches.push(Branch {
            name: name.into(),
            literals,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_evaluation_composes() {
        let e = Expr::input().rev().append("!").prepend(">");
        assert_eq!(e.eval("abc"), ">cba!");
        assert_eq!(e.len(3), 5);
        let r = Expr::input().replace_all('a', 'z');
        assert_eq!(r.eval("banana"), "bznznz");
        assert_eq!(r.len(6), 6);
    }

    #[test]
    fn cond_evaluation() {
        let rev = Expr::input().rev();
        assert_eq!(
            Cond::StartsWith(rev.clone(), "c".into()).eval("abc"),
            Ok(true)
        );
        assert_eq!(
            Cond::EndsWith(rev.clone(), "a".into()).eval("abc"),
            Ok(true)
        );
        assert_eq!(Cond::Eq(rev.clone(), "cba".into()).eval("abc"), Ok(true));
        assert_eq!(
            Cond::Contains(rev.clone(), "ba".into()).eval("abc"),
            Ok(true)
        );
        assert_eq!(Cond::Matches(rev, "c[ab]+".into()).eval("abc"), Ok(true));
        assert!(Cond::Matches(Expr::input(), "[".into()).eval("x").is_err());
    }

    #[test]
    fn program_builder() {
        let p = Program::new("p", 3)
            .branch("a", vec![(Cond::Eq(Expr::input(), "abc".into()), true)])
            .branch("b", vec![(Cond::Eq(Expr::input(), "abc".into()), false)]);
        assert_eq!(p.branches.len(), 2);
        assert_eq!(p.branches[0].name, "a");
    }
}
