//! `qsmt serve` — live annealing dynamics over HTTP.
//!
//! Binds a plain-TCP HTTP/1.1 listener (no framework, no dependencies)
//! and exposes three read-only endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of the
//!   global [`qsmt_metrics::Registry`];
//! * `GET /flight` — JSON dump of the global flight-recorder ring buffer;
//! * `GET /healthz` — liveness probe.
//!
//! Before binding, [`serve`] *exercises* the full sampler family — all
//! six annealing samplers via their trajectory-probe path, plus a QPU
//! simulator submission — so a scrape sees live series for every
//! subsystem the moment the socket opens. The bound address is printed
//! as `metrics listening on http://<addr>` (port 0 is supported and
//! resolves to the kernel-assigned port), which is what `qsmt watch`
//! and the end-to-end scrape test parse.
//!
//! Metric names and the scrape walkthrough are catalogued in
//! `docs/OBSERVABILITY.md`.

use qsmt_anneal::{
    ParallelTempering, PopulationAnnealer, ProbeConfig, Sampler, SimulatedAnnealer,
    SimulatedQuantumAnnealer, SteepestDescent, TabuSearch,
};
use qsmt_metrics::{FlightRecorder, Registry};
use qsmt_qpu::{QpuSimulator, Topology};
use qsmt_qubo::QuboModel;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// Probe sizing used by the exercise pass: full probes, but traces and
/// per-β series capped low enough that label cardinality stays scrape-
/// friendly.
fn exercise_probe_config() -> ProbeConfig {
    ProbeConfig {
        enabled: true,
        max_trace_points: 32,
    }
}

/// The workload every sampler runs during the exercise pass: the
/// two-well 8-variable model from the tempering tests — small enough to
/// finish instantly, rugged enough that acceptance/swap/ESS series are
/// non-trivial.
fn exercise_model() -> QuboModel {
    let mut m = QuboModel::new(8);
    for i in 0..4u32 {
        m.add_linear(i, -1.0);
        for j in (i + 1)..4 {
            m.add_quadratic(i, j, -0.5);
        }
    }
    for i in 4..8u32 {
        m.add_linear(i, -1.2);
        for j in (i + 1)..8 {
            m.add_quadratic(i, j, -0.5);
        }
    }
    for i in 0..4u32 {
        for j in 4..8u32 {
            m.add_quadratic(i, j, 2.0);
        }
    }
    m
}

/// Runs every probed sampler plus a QPU submission against the exercise
/// model, publishing the resulting dynamics into `registry` and marking
/// progress in `flight`. Idempotent in shape: re-running adds to
/// counters and re-sets gauges but never creates unbounded series.
pub fn exercise(registry: &Registry, flight: &FlightRecorder, seed: u64) {
    let model = exercise_model();
    let config = exercise_probe_config();
    let samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(SimulatedAnnealer::new().with_seed(seed).with_num_reads(8)),
        Box::new(
            SimulatedQuantumAnnealer::new()
                .with_seed(seed)
                .with_num_reads(4)
                .with_sweeps(64),
        ),
        Box::new(ParallelTempering::new().with_seed(seed).with_rounds(32)),
        Box::new(PopulationAnnealer::new().with_seed(seed).with_steps(32)),
        Box::new(TabuSearch::new().with_seed(seed).with_num_reads(4)),
        Box::new(SteepestDescent::new().with_seed(seed).with_num_reads(8)),
    ];

    describe_metrics(registry);
    let mut shard = registry.shard();
    for sampler in &samplers {
        let name = sampler.name();
        let (set, stats, dynamics) = sampler.sample_dynamics(&model, &config);
        let labels = [("sampler", name)];
        if let Some(p) = stats.proposals {
            shard.counter_add("qsmt_sampler_proposals_total", &labels, p as f64);
        }
        if let Some(a) = stats.accepted {
            shard.counter_add("qsmt_sampler_accepted_total", &labels, a as f64);
        }
        shard.counter_add(
            "qsmt_sampler_reads_total",
            &labels,
            set.total_reads() as f64,
        );
        if let Some(best) = set.lowest_energy() {
            shard.gauge_set("qsmt_sampler_best_energy", &labels, best);
            flight.record(&format!("exercise.{name}"), best);
        }
        for v in &dynamics.proposal_latency_ns {
            shard.histogram_observe("qsmt_proposal_latency_ns", &labels, *v);
        }
        for v in &dynamics.sweep_improvement {
            shard.histogram_observe("qsmt_sweep_improvement", &labels, *v);
        }
        for (i, b) in dynamics.beta_acceptance.iter().enumerate() {
            let rung = i.to_string();
            let rung_labels = [("sampler", name), ("rung", rung.as_str())];
            shard.gauge_set("qsmt_beta", &rung_labels, b.beta);
            shard.counter_add(
                "qsmt_beta_proposals_total",
                &rung_labels,
                b.proposals as f64,
            );
            shard.counter_add("qsmt_beta_accepted_total", &rung_labels, b.accepted as f64);
        }
        for (i, s) in dynamics.swap_acceptance.iter().enumerate() {
            let pair = i.to_string();
            let pair_labels = [("pair", pair.as_str())];
            shard.counter_add(
                "qsmt_pt_swap_attempts_total",
                &pair_labels,
                s.attempts as f64,
            );
            shard.counter_add(
                "qsmt_pt_swap_accepted_total",
                &pair_labels,
                s.accepted as f64,
            );
        }
        if let Some(last) = dynamics.ess_trace.last() {
            shard.gauge_set("qsmt_population_final_ess", &[], last.ess);
        }
        if let Some(min) = dynamics
            .ess_trace
            .iter()
            .map(|p| p.ess)
            .min_by(f64::total_cmp)
        {
            shard.gauge_set("qsmt_population_min_ess", &[], min);
        }
        if let Some(hits) = dynamics.aspiration_hits {
            shard.counter_add("qsmt_tabu_aspiration_hits_total", &[], hits as f64);
        }
        if let Some(paths) = dynamics.accept_paths {
            for (path, count) in [
                ("early_accept", paths.early_accept),
                ("hard_reject", paths.hard_reject),
                ("bracket_accept", paths.bracket_accept),
                ("bracket_reject", paths.bracket_reject),
                ("exact_exp", paths.exact_exp),
            ] {
                shard.counter_add(
                    "qsmt_accept_path_total",
                    &[("sampler", name), ("path", path)],
                    count as f64,
                );
            }
        }
    }
    drop(shard);

    // QPU pipeline: embed + anneal a chained model so chain-break series
    // exist (the 8-var two-well needs chains on a 2×2 Chimera).
    let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4))
        .with_seed(seed)
        .with_num_reads(32);
    match qpu.sample_qubo(&model) {
        Ok(resp) => {
            let labels = [("topology", "chimera-2x2-4")];
            registry.counter_add(
                "qsmt_qpu_broken_chains_total",
                &labels,
                resp.broken_chains as f64,
            );
            registry.counter_add(
                "qsmt_qpu_chain_slots_total",
                &labels,
                resp.chain_slots as f64,
            );
            registry.gauge_set(
                "qsmt_qpu_chain_break_fraction",
                &labels,
                resp.chain_break_fraction,
            );
            registry.counter_add(
                "qsmt_qpu_discarded_reads_total",
                &labels,
                resp.discarded_reads as f64,
            );
            flight.record("exercise.qpu", resp.chain_break_fraction);
        }
        Err(e) => {
            flight.record_detail("exercise.qpu.embed_error", 1.0, &e.to_string());
        }
    }
}

/// Registers HELP text for every series the exercise pass emits.
fn describe_metrics(registry: &Registry) {
    for (name, help) in [
        (
            "qsmt_sampler_proposals_total",
            "Single-variable moves proposed, per sampler.",
        ),
        (
            "qsmt_sampler_accepted_total",
            "Proposed moves accepted, per sampler.",
        ),
        (
            "qsmt_sampler_reads_total",
            "Reads returned by the sampler's last exercise run.",
        ),
        (
            "qsmt_sampler_best_energy",
            "Lowest energy found on the last exercise run.",
        ),
        (
            "qsmt_proposal_latency_ns",
            "Per-proposal latency on the probe read, nanoseconds.",
        ),
        (
            "qsmt_sweep_improvement",
            "Best-energy improvement per probed sweep.",
        ),
        ("qsmt_beta", "Inverse temperature of each schedule rung."),
        (
            "qsmt_beta_proposals_total",
            "Proposals judged at each schedule rung.",
        ),
        (
            "qsmt_beta_accepted_total",
            "Accepted moves at each schedule rung.",
        ),
        (
            "qsmt_pt_swap_attempts_total",
            "Replica-exchange attempts per adjacent ladder pair.",
        ),
        (
            "qsmt_pt_swap_accepted_total",
            "Replica exchanges accepted per adjacent ladder pair.",
        ),
        (
            "qsmt_population_final_ess",
            "Effective sample size at the final resampling step.",
        ),
        (
            "qsmt_population_min_ess",
            "Lowest effective sample size over the anneal.",
        ),
        (
            "qsmt_tabu_aspiration_hits_total",
            "Tabu moves admitted by the aspiration criterion.",
        ),
        (
            "qsmt_accept_path_total",
            "Metropolis decisions per acceptance-table fast path.",
        ),
        (
            "qsmt_qpu_broken_chains_total",
            "Broken chains observed across QPU reads.",
        ),
        (
            "qsmt_qpu_chain_slots_total",
            "Chain observations (reads x chains) across QPU reads.",
        ),
        (
            "qsmt_qpu_chain_break_fraction",
            "Broken chains per chain slot on the last submission.",
        ),
        (
            "qsmt_qpu_discarded_reads_total",
            "QPU reads dropped by the discard chain-break policy.",
        ),
    ] {
        registry.describe(name, help);
    }
}

/// One HTTP response, status line plus body.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    // A client that hangs up mid-response is its own problem.
    let _ = stream.write_all(response.as_bytes());
}

/// Reads the request line of an HTTP request and returns the path, or
/// `None` for anything unparseable.
fn request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).ok()?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

/// Serves one accepted connection against the registry and recorder.
fn handle(mut stream: TcpStream, registry: &Registry, flight: &FlightRecorder) {
    match request_path(&mut stream).as_deref() {
        Some("/metrics") => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &registry.render_prometheus(),
        ),
        Some("/flight") => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &flight.to_json().pretty(),
        ),
        Some("/healthz") => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        Some(_) => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
        None => respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "bad request\n",
        ),
    }
}

/// Runs the metrics endpoint: exercise the samplers, bind `addr`, print
/// the resolved address, then serve until the process is killed (or, if
/// `max_requests` is set, until that many requests were answered —
/// the hook the end-to-end test uses to terminate deterministically).
///
/// # Errors
/// Returns an error when the address cannot be parsed or bound.
pub fn serve(addr: &str, seed: u64, max_requests: Option<u64>) -> Result<(), String> {
    let registry = qsmt_metrics::global();
    let flight = qsmt_metrics::global_flight();
    exercise(registry, flight, seed);
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    // Parsed by `qsmt watch` users and the e2e scrape test; keep stable.
    println!("metrics listening on http://{local}");
    let mut served = 0u64;
    for stream in listener.incoming() {
        match stream {
            Ok(s) => handle(s, registry, flight),
            Err(_) => continue,
        }
        served += 1;
        if max_requests.is_some_and(|max| served >= max) {
            break;
        }
    }
    Ok(())
}

/// One-shot scrape client (`qsmt watch`): GETs a path from a running
/// `qsmt serve` endpoint and returns the response body.
///
/// # Errors
/// Returns an error when the endpoint is unreachable or replies with a
/// non-200 status.
pub fn fetch(addr: &str, path: &str) -> Result<String, String> {
    let addr = addr.trim_start_matches("http://");
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains("200") {
        return Err(format!("{addr}{path} answered {status}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exercise_covers_every_subsystem() {
        let registry = Registry::new();
        let flight = FlightRecorder::new(64);
        exercise(&registry, &flight, 7);
        let text = registry.render_prometheus();
        for sampler in [
            "simulated-annealing",
            "simulated-quantum-annealing",
            "parallel-tempering",
            "population-annealing",
            "tabu-search",
            "steepest-descent",
        ] {
            assert!(
                text.contains(&format!("sampler=\"{sampler}\"")),
                "missing series for {sampler} in:\n{text}"
            );
        }
        for series in [
            "qsmt_pt_swap_attempts_total",
            "qsmt_population_final_ess",
            "qsmt_tabu_aspiration_hits_total",
            "qsmt_qpu_broken_chains_total",
            "qsmt_qpu_chain_slots_total",
            "qsmt_proposal_latency_ns_bucket",
            "qsmt_accept_path_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        assert!(!flight.is_empty(), "exercise must mark the flight recorder");
    }

    #[test]
    fn exercise_is_deterministic_per_seed() {
        let a = Registry::new();
        let b = Registry::new();
        let f = FlightRecorder::new(8);
        exercise(&a, &f, 3);
        exercise(&b, &f, 3);
        // Latency histograms time real clocks, so compare a timing-free
        // series instead of the whole rendering.
        assert_eq!(
            a.counter_value(
                "qsmt_sampler_accepted_total",
                &[("sampler", "simulated-annealing")]
            ),
            b.counter_value(
                "qsmt_sampler_accepted_total",
                &[("sampler", "simulated-annealing")]
            ),
        );
    }

    #[test]
    fn serve_answers_and_honors_request_cap() {
        use std::thread;
        // Bind on an OS-assigned port in-process, scrape it, and let the
        // request cap terminate the loop.
        let registry = qsmt_metrics::global();
        let flight = qsmt_metrics::global_flight();
        exercise(registry, flight, 1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            for s in listener.incoming().take(3).flatten() {
                handle(s, qsmt_metrics::global(), qsmt_metrics::global_flight());
            }
        });
        let metrics = fetch(&addr.to_string(), "/metrics").unwrap();
        assert!(metrics.contains("# TYPE qsmt_sampler_proposals_total counter"));
        let flight_body = fetch(&addr.to_string(), "/flight").unwrap();
        assert!(flight_body.contains("\"events\""));
        assert!(fetch(&addr.to_string(), "/nope").is_err());
        server.join().unwrap();
    }
}
