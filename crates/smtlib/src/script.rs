//! Script driver: parse → compile → solve → model.

use crate::ast::{parse_command, Command};
use crate::compile::{compile, CompileError, Goal};
use crate::sexpr::{parse_sexprs, SExprError};
use qsmt_core::{ConstraintError, Portfolio, PortfolioPlan, ScriptFacts, StringSolver};

/// A parsed SMT-LIB script.
#[derive(Debug, Clone)]
pub struct Script {
    commands: Vec<Command>,
}

/// Script-level error.
#[derive(Debug)]
pub enum ScriptError {
    /// Syntax error (lexing or S-expressions).
    Syntax(SExprError),
    /// Command/term parsing or sort checking failed.
    Ast(crate::ast::AstError),
    /// Compilation to QUBO goals failed.
    Compile(CompileError),
    /// Encoding a goal failed for a reason other than unsatisfiability.
    Encode(ConstraintError),
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Syntax(e) => write!(f, "{e}"),
            ScriptError::Ast(e) => write!(f, "{e}"),
            ScriptError::Compile(e) => write!(f, "{e}"),
            ScriptError::Encode(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

/// check-sat verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatStatus {
    /// Every goal produced a validated model value.
    Sat,
    /// A goal is provably unsatisfiable (detected at encode time, e.g. a
    /// regex with no match of the asserted length).
    Unsat,
    /// The sampler failed to produce a validating assignment — the honest
    /// verdict for an incomplete, optimization-based decision procedure.
    Unknown,
}

impl std::fmt::Display for SatStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatStatus::Sat => write!(f, "sat"),
            SatStatus::Unsat => write!(f, "unsat"),
            SatStatus::Unknown => write!(f, "unknown"),
        }
    }
}

/// A model value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelValue {
    /// A string assignment.
    Str(String),
    /// An integer assignment (`None` when the query had no answer, e.g.
    /// indexof over a haystack without the needle — SMT-LIB's −1).
    Int(Option<usize>),
}

impl std::fmt::Display for ModelValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelValue::Str(s) => write!(f, "{s:?}"),
            ModelValue::Int(Some(i)) => write!(f, "{i}"),
            ModelValue::Int(None) => write!(f, "(- 1)"),
        }
    }
}

/// The result of running a script.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// The check-sat verdict.
    pub status: SatStatus,
    /// Variable assignments, in declaration order.
    pub model: Vec<(String, ModelValue)>,
}

impl Script {
    /// Parses SMT-LIB source.
    ///
    /// # Errors
    /// Fails on lexical, syntactic, or unsupported-command errors.
    pub fn parse(src: &str) -> Result<Self, ScriptError> {
        let sexprs = parse_sexprs(src).map_err(ScriptError::Syntax)?;
        let commands = sexprs
            .iter()
            .map(parse_command)
            .collect::<Result<Vec<_>, _>>()
            .map_err(ScriptError::Ast)?;
        Ok(Self { commands })
    }

    /// The parsed commands.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Compiles the script to per-variable goals.
    ///
    /// # Errors
    /// Fails on sort errors or unsupported fragments.
    pub fn compile(&self) -> Result<Vec<Goal>, ScriptError> {
        compile(&self.commands).map_err(ScriptError::Compile)
    }

    /// Runs the script against a solver, producing a verdict and model.
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn solve(&self, solver: &StringSolver) -> Result<ScriptOutcome, ScriptError> {
        let goals = self.compile()?;
        Self::solve_goals(&goals, solver)
    }

    /// Runs the abstract-interpretation pass over the script (see
    /// `docs/ABSINT.md`): lowering, fixpoint, certificate, tightenings,
    /// and routing features. Purely static — no QUBO is built.
    pub fn absint(&self) -> crate::absint::AbsintRun {
        crate::absint::AbsintRun::over(&self.commands)
    }

    /// Like [`Script::solve`], but runs the abstract-interpretation
    /// pass first. A statically refuted script (certificate confirmed
    /// by the replay checker) returns `unsat` without compiling
    /// anything; otherwise the derived domain tightenings are applied
    /// to the compiled goals so pinned positions never reach the
    /// sampler. The returned [`AbsintRun`](crate::absint::AbsintRun)
    /// carries the verdict, certificate, and accounting either way.
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn solve_absint(
        &self,
        solver: &StringSolver,
    ) -> Result<(ScriptOutcome, crate::absint::AbsintRun), ScriptError> {
        let mut run = self.absint();
        if run.is_refuted() {
            return Ok((
                ScriptOutcome {
                    status: SatStatus::Unsat,
                    model: Vec::new(),
                },
                run,
            ));
        }
        let goals = self.compile()?;
        let (goals, eliminated) = crate::absint::apply_tightenings(goals, &run.analysis);
        run.vars_eliminated = eliminated;
        let out = Self::solve_goals(&goals, solver)?;
        Ok((out, run))
    }

    fn solve_goals(goals: &[Goal], solver: &StringSolver) -> Result<ScriptOutcome, ScriptError> {
        let mut model = Vec::with_capacity(goals.len());
        let mut status = SatStatus::Sat;
        for goal in goals {
            match goal {
                Goal::StringConstraint { name, constraint } => match solver.solve(constraint) {
                    Ok(out) => {
                        if !out.valid {
                            status = SatStatus::Unknown;
                        }
                        let text = out.solution.as_text().unwrap_or_default().to_string();
                        model.push((name.clone(), ModelValue::Str(text)));
                    }
                    Err(e) if is_unsat(&e) => {
                        return Ok(ScriptOutcome {
                            status: SatStatus::Unsat,
                            model: Vec::new(),
                        })
                    }
                    Err(e) => return Err(ScriptError::Encode(e)),
                },
                Goal::StringPipeline { name, pipeline } => match pipeline.run(solver) {
                    Ok(report) => {
                        if !report.all_valid() {
                            status = SatStatus::Unknown;
                        }
                        model.push((name.clone(), ModelValue::Str(report.final_text)));
                    }
                    Err(e) if is_unsat(&e) => {
                        return Ok(ScriptOutcome {
                            status: SatStatus::Unsat,
                            model: Vec::new(),
                        })
                    }
                    Err(e) => return Err(ScriptError::Encode(e)),
                },
                Goal::IndexQuery { name, constraint } => match solver.solve(constraint) {
                    Ok(out) => {
                        if !out.valid {
                            status = SatStatus::Unknown;
                        }
                        model.push((name.clone(), ModelValue::Int(out.solution.as_index())));
                    }
                    Err(e) if is_unsat(&e) => {
                        return Ok(ScriptOutcome {
                            status: SatStatus::Unsat,
                            model: Vec::new(),
                        })
                    }
                    Err(e) => return Err(ScriptError::Encode(e)),
                },
            }
        }
        Ok(ScriptOutcome { status, model })
    }

    /// Like [`Script::solve`], additionally returning one
    /// [`GoalReport`](qsmt_telemetry::GoalReport) per goal with the full
    /// per-stage telemetry of every solver invocation. This is the entry
    /// point behind `qsmt solve --stats/--report`; see
    /// `docs/OBSERVABILITY.md` for the report schema.
    ///
    /// On an unsat verdict the goals reported so far are returned (the
    /// goal that proved unsat at encode time never ran a sampler, so it
    /// has no report).
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn solve_reported(
        &self,
        solver: &StringSolver,
    ) -> Result<(ScriptOutcome, Vec<qsmt_telemetry::GoalReport>), ScriptError> {
        let goals = self.compile()?;
        Self::solve_goals_reported(&goals, solver)
    }

    /// Like [`Script::solve_reported`], but with the
    /// abstract-interpretation pass in front, exactly as in
    /// [`Script::solve_absint`]: statically refuted scripts return
    /// `unsat` with no goal reports, and tightenings shrink the QUBOs
    /// of everything else. This is the entry point behind the default
    /// `qsmt solve` and the serve loop.
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn solve_reported_absint(
        &self,
        solver: &StringSolver,
    ) -> Result<
        (
            ScriptOutcome,
            Vec<qsmt_telemetry::GoalReport>,
            crate::absint::AbsintRun,
        ),
        ScriptError,
    > {
        let mut run = {
            let _t = qsmt_trace::span("absint");
            self.absint()
        };
        if run.is_refuted() {
            return Ok((
                ScriptOutcome {
                    status: SatStatus::Unsat,
                    model: Vec::new(),
                },
                Vec::new(),
                run,
            ));
        }
        let goals = self.compile()?;
        let (goals, eliminated) = crate::absint::apply_tightenings(goals, &run.analysis);
        run.vars_eliminated = eliminated;
        let (out, reports) = Self::solve_goals_reported(&goals, solver)?;
        Ok((out, reports, run))
    }

    fn solve_goals_reported(
        goals: &[Goal],
        solver: &StringSolver,
    ) -> Result<(ScriptOutcome, Vec<qsmt_telemetry::GoalReport>), ScriptError> {
        use qsmt_telemetry::{GoalKind, GoalReport};

        let mut model = Vec::with_capacity(goals.len());
        let mut reports = Vec::with_capacity(goals.len());
        let mut status = SatStatus::Sat;
        let unsat = |reports: Vec<GoalReport>| {
            Ok((
                ScriptOutcome {
                    status: SatStatus::Unsat,
                    model: Vec::new(),
                },
                reports,
            ))
        };
        for goal in goals {
            let goal_name = match goal {
                Goal::StringConstraint { name, .. }
                | Goal::StringPipeline { name, .. }
                | Goal::IndexQuery { name, .. } => name,
            };
            // Gate the label format behind an active trace so untraced
            // solves pay nothing here.
            let _goal_span =
                qsmt_trace::active().then(|| qsmt_trace::span_dyn(format!("goal {goal_name}")));
            match goal {
                Goal::StringConstraint { name, constraint } => {
                    match solver.solve_reported(constraint) {
                        Ok((out, report)) => {
                            if !out.valid {
                                status = SatStatus::Unknown;
                            }
                            let text = out.solution.as_text().unwrap_or_default().to_string();
                            model.push((name.clone(), ModelValue::Str(text.clone())));
                            reports.push(GoalReport {
                                name: name.clone(),
                                kind: GoalKind::Constraint,
                                answer: text,
                                valid: out.valid,
                                total_us: report.total_us,
                                solves: vec![report],
                            });
                        }
                        Err(e) if is_unsat(&e) => return unsat(reports),
                        Err(e) => return Err(ScriptError::Encode(e)),
                    }
                }
                Goal::StringPipeline { name, pipeline } => match pipeline.run_reported(solver) {
                    Ok((report, solves)) => {
                        if !report.all_valid() {
                            status = SatStatus::Unknown;
                        }
                        let valid = report.all_valid();
                        model.push((name.clone(), ModelValue::Str(report.final_text.clone())));
                        reports.push(GoalReport {
                            name: name.clone(),
                            kind: GoalKind::Pipeline,
                            answer: report.final_text,
                            valid,
                            total_us: solves.iter().map(|s| s.total_us).sum(),
                            solves,
                        });
                    }
                    Err(e) if is_unsat(&e) => return unsat(reports),
                    Err(e) => return Err(ScriptError::Encode(e)),
                },
                Goal::IndexQuery { name, constraint } => match solver.solve_reported(constraint) {
                    Ok((out, report)) => {
                        if !out.valid {
                            status = SatStatus::Unknown;
                        }
                        let value = ModelValue::Int(out.solution.as_index());
                        let answer = value.to_string();
                        model.push((name.clone(), value));
                        reports.push(GoalReport {
                            name: name.clone(),
                            kind: GoalKind::IndexQuery,
                            answer,
                            valid: out.valid,
                            total_us: report.total_us,
                            solves: vec![report],
                        });
                    }
                    Err(e) if is_unsat(&e) => return unsat(reports),
                    Err(e) => return Err(ScriptError::Encode(e)),
                },
            }
        }
        Ok((ScriptOutcome { status, model }, reports))
    }

    /// Lifts the absint feature vector into the core router's
    /// [`ScriptFacts`] so script-level structure (regex membership,
    /// pinned positions, admissible-character widths) can steer routing.
    pub fn script_facts(run: &crate::absint::AbsintRun) -> ScriptFacts {
        let f = &run.analysis.features;
        ScriptFacts {
            string_vars: f.string_vars,
            assertions: f.assertions,
            regexes: f.regexes,
            contains: f.contains,
            pinned_positions: f.pinned_positions,
            avg_position_width: f.avg_position_width,
        }
    }

    /// Like [`Script::solve_reported_absint`], but string-constraint and
    /// index-query goals are solved by racing a routed portfolio
    /// ([`StringSolver::solve_portfolio_reported`]); their reports carry
    /// the schema-v9 `portfolio` section. Pipeline goals run the normal
    /// single-strategy path — each stage feeds the next, so there is no
    /// independent race to win.
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn solve_portfolio_reported_absint(
        &self,
        solver: &StringSolver,
        portfolio: &Portfolio,
    ) -> Result<
        (
            ScriptOutcome,
            Vec<qsmt_telemetry::GoalReport>,
            crate::absint::AbsintRun,
        ),
        ScriptError,
    > {
        let mut run = {
            let _t = qsmt_trace::span("absint");
            self.absint()
        };
        if run.is_refuted() {
            return Ok((
                ScriptOutcome {
                    status: SatStatus::Unsat,
                    model: Vec::new(),
                },
                Vec::new(),
                run,
            ));
        }
        let facts = Self::script_facts(&run);
        let goals = self.compile()?;
        let (goals, eliminated) = crate::absint::apply_tightenings(goals, &run.analysis);
        run.vars_eliminated = eliminated;
        let (out, reports) =
            Self::solve_goals_portfolio_reported(&goals, solver, portfolio, &facts)?;
        Ok((out, reports, run))
    }

    fn solve_goals_portfolio_reported(
        goals: &[Goal],
        solver: &StringSolver,
        portfolio: &Portfolio,
        facts: &ScriptFacts,
    ) -> Result<(ScriptOutcome, Vec<qsmt_telemetry::GoalReport>), ScriptError> {
        use qsmt_telemetry::{GoalKind, GoalReport};

        let mut model = Vec::with_capacity(goals.len());
        let mut reports = Vec::with_capacity(goals.len());
        let mut status = SatStatus::Sat;
        let unsat = |reports: Vec<GoalReport>| {
            Ok((
                ScriptOutcome {
                    status: SatStatus::Unsat,
                    model: Vec::new(),
                },
                reports,
            ))
        };
        for goal in goals {
            let goal_name = match goal {
                Goal::StringConstraint { name, .. }
                | Goal::StringPipeline { name, .. }
                | Goal::IndexQuery { name, .. } => name,
            };
            let _goal_span =
                qsmt_trace::active().then(|| qsmt_trace::span_dyn(format!("goal {goal_name}")));
            match goal {
                Goal::StringConstraint { name, constraint } => {
                    match solver.solve_portfolio_reported(constraint, portfolio, Some(facts)) {
                        Ok((out, report)) => {
                            if !out.outcome.valid {
                                status = SatStatus::Unknown;
                            }
                            let text = out
                                .outcome
                                .solution
                                .as_text()
                                .unwrap_or_default()
                                .to_string();
                            model.push((name.clone(), ModelValue::Str(text.clone())));
                            reports.push(GoalReport {
                                name: name.clone(),
                                kind: GoalKind::Constraint,
                                answer: text,
                                valid: out.outcome.valid,
                                total_us: report.total_us,
                                solves: vec![report],
                            });
                        }
                        Err(e) if is_unsat(&e) => return unsat(reports),
                        Err(e) => return Err(ScriptError::Encode(e)),
                    }
                }
                Goal::StringPipeline { name, pipeline } => match pipeline.run_reported(solver) {
                    Ok((report, solves)) => {
                        if !report.all_valid() {
                            status = SatStatus::Unknown;
                        }
                        let valid = report.all_valid();
                        model.push((name.clone(), ModelValue::Str(report.final_text.clone())));
                        reports.push(GoalReport {
                            name: name.clone(),
                            kind: GoalKind::Pipeline,
                            answer: report.final_text,
                            valid,
                            total_us: solves.iter().map(|s| s.total_us).sum(),
                            solves,
                        });
                    }
                    Err(e) if is_unsat(&e) => return unsat(reports),
                    Err(e) => return Err(ScriptError::Encode(e)),
                },
                Goal::IndexQuery { name, constraint } => {
                    match solver.solve_portfolio_reported(constraint, portfolio, Some(facts)) {
                        Ok((out, report)) => {
                            if !out.outcome.valid {
                                status = SatStatus::Unknown;
                            }
                            let value = ModelValue::Int(out.outcome.solution.as_index());
                            let answer = value.to_string();
                            model.push((name.clone(), value));
                            reports.push(GoalReport {
                                name: name.clone(),
                                kind: GoalKind::IndexQuery,
                                answer,
                                valid: out.outcome.valid,
                                total_us: report.total_us,
                                solves: vec![report],
                            });
                        }
                        Err(e) if is_unsat(&e) => return unsat(reports),
                        Err(e) => return Err(ScriptError::Encode(e)),
                    }
                }
            }
        }
        Ok((ScriptOutcome { status, model }, reports))
    }

    /// The routed portfolio plan for every goal a portfolio run would
    /// race, without racing anything: the deterministic routing record
    /// snapshotted by `benchmarks/portfolio_expected.json`. Uses the
    /// same absint-tightened goals and script facts as
    /// [`Script::solve_portfolio_reported_absint`]. Pipeline goals never
    /// race, so their plan is `None`; a statically refuted script
    /// returns an empty list.
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn portfolio_plans(
        &self,
        solver: &StringSolver,
        portfolio: &Portfolio,
    ) -> Result<Vec<(String, Option<PortfolioPlan>)>, ScriptError> {
        let run = self.absint();
        if run.is_refuted() {
            return Ok(Vec::new());
        }
        let facts = Self::script_facts(&run);
        let goals = self.compile()?;
        let (goals, _) = crate::absint::apply_tightenings(goals, &run.analysis);
        let mut plans = Vec::with_capacity(goals.len());
        for goal in &goals {
            match goal {
                Goal::StringConstraint { name, constraint }
                | Goal::IndexQuery { name, constraint } => {
                    match solver.routing_features(constraint, Some(&facts)) {
                        Ok(features) => {
                            plans.push((name.clone(), Some(portfolio.router().route(&features))));
                        }
                        Err(e) if is_unsat(&e) => {
                            plans.push((name.clone(), None));
                        }
                        Err(e) => return Err(ScriptError::Encode(e)),
                    }
                }
                Goal::StringPipeline { name, .. } => plans.push((name.clone(), None)),
            }
        }
        Ok(plans)
    }
}

/// Per-goal result of a static lint pass over a script
/// ([`Script::lint`]).
#[derive(Debug, Clone)]
pub struct GoalLint {
    /// The goal's declared variable name.
    pub name: String,
    /// One lint report per solver invocation the goal would perform
    /// (pipelines produce one per stage). Empty when the goal proved
    /// unsatisfiable at encode time — there is no QUBO to lint.
    pub reports: Vec<qsmt_core::LintReport>,
    /// True when encoding proved the goal unsatisfiable.
    pub unsat: bool,
}

impl GoalLint {
    /// True when any stage of this goal carries an error-level diagnostic.
    pub fn has_errors(&self) -> bool {
        self.reports.iter().any(qsmt_core::LintReport::has_errors)
    }
}

impl Script {
    /// Statically lints every goal's compiled QUBO without sampling: the
    /// script-level entry point behind `qsmt lint`. Goals that prove
    /// unsatisfiable at encode time are reported with `unsat: true` and
    /// no lint reports (unsatisfiability is a property of the constraint,
    /// not a formulation defect).
    ///
    /// # Errors
    /// Propagates compilation errors and non-unsat encoding errors.
    pub fn lint(&self, solver: &StringSolver) -> Result<Vec<GoalLint>, ScriptError> {
        let goals = self.compile()?;
        let mut out = Vec::with_capacity(goals.len());
        for goal in &goals {
            let (name, linted) = match goal {
                Goal::StringConstraint { name, constraint }
                | Goal::IndexQuery { name, constraint } => {
                    (name, solver.lint(constraint).map(|r| vec![r]))
                }
                Goal::StringPipeline { name, pipeline } => (name, pipeline.lint(solver)),
            };
            match linted {
                Ok(reports) => out.push(GoalLint {
                    name: name.clone(),
                    reports,
                    unsat: false,
                }),
                Err(e) if is_unsat(&e) => out.push(GoalLint {
                    name: name.clone(),
                    reports: Vec::new(),
                    unsat: true,
                }),
                Err(e) => return Err(ScriptError::Encode(e)),
            }
        }
        Ok(out)
    }
}

/// Encoding errors that prove unsatisfiability of the asserted conjunction
/// (rather than a malformed script).
fn is_unsat(e: &ConstraintError) -> bool {
    matches!(
        e,
        ConstraintError::RegexUnsatisfiable { .. }
            | ConstraintError::SubstringTooLong { .. }
            | ConstraintError::IndexOutOfRange { .. }
            | ConstraintError::LengthOutOfRange { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> StringSolver {
        StringSolver::with_defaults().with_seed(5)
    }

    #[test]
    fn solves_equality_script() {
        let script = Script::parse(
            "(set-logic QF_S)\
             (declare-const x String)\
             (assert (= x \"hi\"))\
             (check-sat)(get-model)",
        )
        .unwrap();
        let out = script.solve(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Sat);
        assert_eq!(out.model, vec![("x".into(), ModelValue::Str("hi".into()))]);
    }

    #[test]
    fn solves_table1_row4_as_smtlib() {
        let script = Script::parse(
            "(declare-const x String)\
             (assert (= x (str.replace_all (str.++ \"hello\" \" \" \"world\") \"l\" \"x\")))",
        )
        .unwrap();
        let out = script.solve(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Sat);
        assert_eq!(
            out.model,
            vec![("x".into(), ModelValue::Str("hexxo worxd".into()))]
        );
    }

    #[test]
    fn solves_palindrome_script() {
        let script = Script::parse(
            "(declare-const p String)\
             (assert (= p (str.rev p)))\
             (assert (= (str.len p) 4))",
        )
        .unwrap();
        let out = script.solve(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Sat);
        let ModelValue::Str(p) = &out.model[0].1 else {
            panic!()
        };
        assert_eq!(p.chars().rev().collect::<String>(), *p);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn solves_regex_script() {
        let script = Script::parse(
            "(declare-const r String)\
             (assert (str.in_re r (re.++ (str.to_re \"a\") (re.+ (re.union (str.to_re \"b\") (str.to_re \"c\"))))))\
             (assert (= (str.len r) 4))",
        )
        .unwrap();
        let out = script.solve(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Sat);
        let ModelValue::Str(r) = &out.model[0].1 else {
            panic!()
        };
        assert!(r.starts_with('a'));
        assert!(r[1..].chars().all(|c| c == 'b' || c == 'c'));
    }

    #[test]
    fn indexof_script_reports_integer() {
        let script = Script::parse(
            "(declare-const i Int)\
             (assert (= i (str.indexof \"hello world\" \"world\" 0)))",
        )
        .unwrap();
        let out = script.solve(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Sat);
        assert_eq!(out.model, vec![("i".into(), ModelValue::Int(Some(6)))]);
    }

    #[test]
    fn reported_solve_matches_solve_and_labels_goal_kinds() {
        let script = Script::parse(
            "(declare-const x String)\
             (assert (= x (str.rev \"ab\")))\
             (declare-const i Int)\
             (assert (= i (str.indexof \"hello\" \"llo\" 0)))",
        )
        .unwrap();
        let plain = script.solve(&solver()).unwrap();
        let (reported, goals) = script.solve_reported(&solver()).unwrap();
        assert_eq!(plain.status, reported.status);
        assert_eq!(plain.model, reported.model);
        assert_eq!(goals.len(), 2);
        assert_eq!(goals[0].kind, qsmt_telemetry::GoalKind::Pipeline);
        assert_eq!(goals[1].kind, qsmt_telemetry::GoalKind::IndexQuery);
        assert!(goals.iter().all(|g| g.valid));
        assert!(goals.iter().all(|g| !g.solves.is_empty()));
    }

    #[test]
    fn reported_unsat_returns_partial_goal_reports() {
        let script = Script::parse(
            "(declare-const r String)\
             (assert (str.in_re r (str.to_re \"abc\")))\
             (assert (= (str.len r) 2))",
        )
        .unwrap();
        let (out, goals) = script.solve_reported(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Unsat);
        assert!(goals.is_empty(), "the unsat goal never reached the sampler");
    }

    #[test]
    fn unsat_detected_for_impossible_regex_length() {
        let script = Script::parse(
            "(declare-const r String)\
             (assert (str.in_re r (str.to_re \"abc\")))\
             (assert (= (str.len r) 2))",
        )
        .unwrap();
        let out = script.solve(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Unsat);
    }

    #[test]
    fn lint_covers_every_goal_without_sampling() {
        let script = Script::parse(
            "(declare-const x String)\
             (assert (= x (str.rev \"ab\")))\
             (declare-const i Int)\
             (assert (= i (str.indexof \"hello\" \"llo\" 0)))",
        )
        .unwrap();
        let lints = script.lint(&solver()).unwrap();
        assert_eq!(lints.len(), 2);
        assert_eq!(lints[0].name, "x");
        assert_eq!(lints[1].name, "i");
        for goal in &lints {
            assert!(!goal.unsat);
            assert!(!goal.reports.is_empty());
            assert!(!goal.has_errors());
        }
    }

    #[test]
    fn lint_marks_encode_time_unsat_goals() {
        let script = Script::parse(
            "(declare-const r String)\
             (assert (str.in_re r (str.to_re \"abc\")))\
             (assert (= (str.len r) 2))",
        )
        .unwrap();
        let lints = script.lint(&solver()).unwrap();
        assert_eq!(lints.len(), 1);
        assert!(lints[0].unsat);
        assert!(lints[0].reports.is_empty());
    }

    #[test]
    fn solve_absint_refutes_statically_without_compiling() {
        // Compilation alone would also catch this (contains longer than
        // the length), but the absint path decides before compile and
        // carries a checkable certificate.
        let script = Script::parse(
            "(declare-const s String)\
             (assert (str.contains s \"toolong\"))\
             (assert (= (str.len s) 3))",
        )
        .unwrap();
        let (out, run) = script.solve_absint(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Unsat);
        assert!(out.model.is_empty());
        assert!(run.is_refuted());
        assert!(run.analysis.verify_certificate().is_ok());
        let (rout, reports, _) = script.solve_reported_absint(&solver()).unwrap();
        assert_eq!(rout.status, SatStatus::Unsat);
        assert!(reports.is_empty());
    }

    #[test]
    fn solve_absint_tightens_sat_scripts_and_keeps_answers_valid() {
        let script = Script::parse(
            "(declare-const s String)\
             (assert (= (str.at s 0) \"q\"))\
             (assert (= (str.at s 2) \"z\"))\
             (assert (= (str.len s) 4))",
        )
        .unwrap();
        let (out, run) = script.solve_absint(&solver()).unwrap();
        assert_eq!(out.status, SatStatus::Sat);
        assert_eq!(run.vars_eliminated, 14);
        let ModelValue::Str(s) = &out.model[0].1 else {
            panic!("string model expected");
        };
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('q') && s.as_bytes()[2] == b'z', "{s:?}");
    }

    #[test]
    fn syntax_error_reported() {
        assert!(Script::parse("(assert (= x \"hi\")").is_err());
        assert!(Script::parse("(bogus-command)").is_err());
    }

    #[test]
    fn model_value_display() {
        assert_eq!(ModelValue::Int(None).to_string(), "(- 1)");
        assert_eq!(ModelValue::Int(Some(3)).to_string(), "3");
        assert_eq!(ModelValue::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(SatStatus::Sat.to_string(), "sat");
    }
}
