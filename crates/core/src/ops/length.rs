//! §4.6 String length: unary slot-occupancy encoding, plus a practical
//! generation variant.

use crate::encode::{bit_index, BITS_PER_CHAR};
use crate::error::ConstraintError;
use crate::ops::{BiasProfile, DEFAULT_STRENGTH};
use crate::problem::{DecodeScheme, EncodedProblem};

/// The paper-faithful length encoder (paper §4.6).
///
/// The paper's objective sets the first `L` *bits* of the binary string to
/// 1 and the rest to 0:
///
/// ```text
/// Q = Σ_{i=1..L} (−x_i) + Σ_{i=L+1..n} x_i
/// ```
///
/// over a `7n × 7n` diagonal matrix. Read literally this is a **unary
/// slot-occupancy encoding**: a 1-bit means "this slot is occupied", and a
/// string "has length L" when exactly the first `7L` slots are occupied.
/// (Under the paper's own ASCII decoding the occupied characters read back
/// as `0x7F`; DESIGN.md documents this interpretation gap.) Decoding
/// counts fully-occupied 7-bit groups.
#[derive(Debug, Clone)]
pub struct LengthUnary {
    desired: usize,
    slots: usize,
    strength: f64,
}

impl LengthUnary {
    /// Wants length `desired` out of `slots` available character slots.
    pub fn new(desired: usize, slots: usize) -> Self {
        Self {
            desired,
            slots,
            strength: DEFAULT_STRENGTH,
        }
    }

    /// Overrides the penalty strength `A`.
    pub fn with_strength(mut self, a: f64) -> Self {
        assert!(a > 0.0, "strength must be positive");
        self.strength = a;
        self
    }

    /// Compiles to QUBO form.
    ///
    /// # Errors
    /// Fails when `desired > slots`.
    pub fn encode(&self) -> Result<EncodedProblem, ConstraintError> {
        if self.desired > self.slots {
            return Err(ConstraintError::LengthOutOfRange {
                desired: self.desired,
                slots: self.slots,
            });
        }
        let n_bits = self.slots * BITS_PER_CHAR;
        let l_bits = self.desired * BITS_PER_CHAR;
        let mut qubo = qsmt_qubo::QuboModel::new(n_bits);
        for i in 0..n_bits {
            qubo.add_linear(
                i as u32,
                if i < l_bits {
                    -self.strength
                } else {
                    self.strength
                },
            );
        }
        Ok(EncodedProblem {
            qubo,
            decode: DecodeScheme::LengthUnary { chars: self.slots },
            name: "string-length-unary",
            description: format!(
                "occupy exactly {} of {} character slots (paper §4.6 unary encoding)",
                self.desired, self.slots
            ),
        })
    }
}

/// A practical generation variant: produce a *printable* string of exactly
/// the desired length inside a larger buffer.
///
/// The first `L` character slots receive a soft character bias (so any
/// biased-block character satisfies them), and the trailing slots are
/// strongly pinned to NUL (`0000000`). Decoding yields the full buffer;
/// trimming trailing NULs gives the length-`L` string. This is the variant
/// the solver uses when a *string* (not just an occupancy pattern) of a
/// given length must be produced.
#[derive(Debug, Clone)]
pub struct LengthWithFill {
    desired: usize,
    slots: usize,
    strength: f64,
    bias: BiasProfile,
}

impl LengthWithFill {
    /// Generates a printable string of `desired` characters in a buffer of
    /// `slots`.
    pub fn new(desired: usize, slots: usize) -> Self {
        Self {
            desired,
            slots,
            strength: DEFAULT_STRENGTH,
            bias: BiasProfile::lowercase_block(),
        }
    }

    /// Overrides the penalty strength `A`.
    pub fn with_strength(mut self, a: f64) -> Self {
        assert!(a > 0.0, "strength must be positive");
        self.strength = a;
        self
    }

    /// Overrides the fill-character bias.
    pub fn with_bias(mut self, bias: BiasProfile) -> Self {
        self.bias = bias;
        self
    }

    /// Compiles to QUBO form.
    ///
    /// # Errors
    /// Fails when `desired > slots`.
    pub fn encode(&self) -> Result<EncodedProblem, ConstraintError> {
        if self.desired > self.slots {
            return Err(ConstraintError::LengthOutOfRange {
                desired: self.desired,
                slots: self.slots,
            });
        }
        let mut qubo = qsmt_qubo::QuboModel::new(self.slots * BITS_PER_CHAR);
        for pos in 0..self.desired {
            self.bias.apply(&mut qubo, pos, self.strength);
            // Ensure occupied slots cannot decode to NUL: pull the low bit
            // weakly toward 1 if the bias is otherwise empty there.
            if self.bias.is_none() {
                qubo.add_linear(bit_index(pos, BITS_PER_CHAR - 1), -0.05 * self.strength);
            }
        }
        for pos in self.desired..self.slots {
            for i in 0..BITS_PER_CHAR {
                qubo.add_linear(bit_index(pos, i), self.strength);
            }
        }
        Ok(EncodedProblem {
            qubo,
            decode: DecodeScheme::AsciiString { len: self.slots },
            name: "string-length-fill",
            description: format!(
                "generate a printable string of length {} in a {}-slot buffer",
                self.desired, self.slots
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::{exact_solutions, exact_texts};
    use crate::problem::Solution;

    #[test]
    fn unary_ground_state_is_exactly_l_groups() {
        let p = LengthUnary::new(2, 3).encode().unwrap();
        let (_, sols) = exact_solutions(&p);
        assert_eq!(sols, vec![Solution::Length(2)]);
    }

    #[test]
    fn unary_ground_energy() {
        // 14 bits at −A, 7 bits at +A kept 0 → energy −14A.
        let p = LengthUnary::new(2, 3).with_strength(1.0).encode().unwrap();
        let (e, _) = exact_solutions(&p);
        assert_eq!(e, -14.0);
    }

    #[test]
    fn unary_zero_length() {
        let p = LengthUnary::new(0, 2).encode().unwrap();
        let (_, sols) = exact_solutions(&p);
        assert_eq!(sols, vec![Solution::Length(0)]);
    }

    #[test]
    fn unary_full_length() {
        let p = LengthUnary::new(3, 3).encode().unwrap();
        let (_, sols) = exact_solutions(&p);
        assert_eq!(sols, vec![Solution::Length(3)]);
    }

    #[test]
    fn unary_rejects_oversized_length() {
        assert!(matches!(
            LengthUnary::new(4, 3).encode(),
            Err(ConstraintError::LengthOutOfRange { .. })
        ));
    }

    #[test]
    fn fill_variant_generates_printable_prefix_and_nul_tail() {
        let p = LengthWithFill::new(2, 3).encode().unwrap();
        for t in exact_texts(&p) {
            let bytes = t.as_bytes();
            assert_eq!(bytes.len(), 3);
            assert!((0x60..=0x7f).contains(&bytes[0]));
            assert!((0x60..=0x7f).contains(&bytes[1]));
            assert_eq!(bytes[2], 0, "tail must be NUL");
            assert_eq!(t.trim_end_matches('\0').len(), 2);
        }
    }

    #[test]
    fn fill_variant_without_bias_still_avoids_nul_prefix() {
        let p = LengthWithFill::new(1, 2)
            .with_bias(BiasProfile::none())
            .encode()
            .unwrap();
        for t in exact_texts(&p) {
            assert_ne!(t.as_bytes()[0], 0, "occupied slot must not be NUL");
            assert_eq!(t.as_bytes()[1], 0);
        }
    }

    #[test]
    fn fill_variant_rejects_oversized_length() {
        assert!(LengthWithFill::new(5, 3).encode().is_err());
    }
}
