//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. Workspace types carry
//! `#[derive(Serialize, Deserialize)]` as forward-compatible annotations
//! but nothing in-tree drives a serde serializer — the JSON run reports
//! are emitted by `qsmt-telemetry`'s own writer. This shim therefore only
//! provides the names: marker traits with blanket impls, and (behind the
//! `derive` feature) no-op derive macros.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all
/// types; carries no behavior.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all
/// types; carries no behavior.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
