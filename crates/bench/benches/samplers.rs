//! Bench S2 — sampler shoot-out on the string-constraint QUBOs: simulated
//! annealing vs parallel tempering vs tabu vs steepest descent vs random,
//! plus the geometric-vs-linear β-schedule ablation (DESIGN.md choice #5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsmt_anneal::{
    BetaSchedule, ParallelTempering, RandomSampler, Sampler, SimulatedAnnealer,
    SimulatedQuantumAnnealer, SteepestDescent, TabuSearch,
};
use qsmt_core::Constraint;
use std::hint::black_box;

fn workloads() -> Vec<(&'static str, qsmt_core::EncodedProblem)> {
    vec![
        (
            "palindrome3",
            Constraint::Palindrome { len: 3 }.encode().expect("encodes"),
        ),
        (
            "includes",
            Constraint::Includes {
                haystack: "abcabcabc".into(),
                needle: "abc".into(),
            }
            .encode()
            .expect("encodes"),
        ),
        (
            "regex4",
            Constraint::Regex {
                pattern: "a[bc]+".into(),
                len: 4,
            }
            .encode()
            .expect("encodes"),
        ),
    ]
}

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("samplers");
    g.sample_size(10);
    let samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(SimulatedAnnealer::new().with_seed(1).with_num_reads(16)),
        Box::new(
            SimulatedQuantumAnnealer::new()
                .with_seed(1)
                .with_num_reads(8)
                .with_trotter_slices(8),
        ),
        Box::new(ParallelTempering::new().with_seed(1).with_rounds(32)),
        Box::new(TabuSearch::new().with_seed(1).with_num_reads(4)),
        Box::new(SteepestDescent::new().with_seed(1).with_num_reads(16)),
        Box::new(RandomSampler::new().with_seed(1).with_num_reads(16)),
    ];
    for (wname, problem) in workloads() {
        for sampler in &samplers {
            g.bench_with_input(BenchmarkId::new(sampler.name(), wname), &problem, |b, p| {
                b.iter(|| black_box(sampler.sample(&p.qubo)));
            });
        }
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("beta-schedule");
    g.sample_size(10);
    let problem = Constraint::Palindrome { len: 4 }.encode().expect("encodes");
    for (name, schedule) in [
        (
            "geometric",
            BetaSchedule::Geometric {
                beta_min: 0.1,
                beta_max: 10.0,
                sweeps: 256,
            },
        ),
        (
            "linear",
            BetaSchedule::Linear {
                beta_min: 0.1,
                beta_max: 10.0,
                sweeps: 256,
            },
        ),
    ] {
        let sa = SimulatedAnnealer::new()
            .with_seed(2)
            .with_num_reads(16)
            .with_schedule(schedule);
        g.bench_function(name, |b| b.iter(|| black_box(sa.sample(&problem.qubo))));
    }
    g.finish();
}

criterion_group!(benches, bench_samplers, bench_schedules);
criterion_main!(benches);
