//! Bench S2 companion: prints the full sampler-quality table —
//! ground-state probability, R99 repetitions, and time-to-solution — for
//! every sampler on every workload, against exact ground energies.
//!
//! Run with: `cargo run --release -p qsmt-bench --bin sampler_report`

use qsmt_anneal::metrics::{ground_state_probability, repetitions_to_confidence, time_to_solution};
use qsmt_anneal::{
    ExactSolver, ParallelTempering, PopulationAnnealer, RandomSampler, Sampler, SimulatedAnnealer,
    SimulatedQuantumAnnealer, SteepestDescent, TabuSearch,
};
use qsmt_core::Constraint;
use std::time::Instant;

fn main() {
    let workloads: Vec<(&str, Constraint)> = vec![
        (
            "equality(abc)",
            Constraint::Equality {
                target: "abc".into(),
            },
        ),
        ("palindrome(3)", Constraint::Palindrome { len: 3 }),
        (
            "regex a[bc] (2)",
            Constraint::Regex {
                pattern: "a[bc]".into(),
                len: 2,
            },
        ),
        (
            "includes(abcabc)",
            Constraint::Includes {
                haystack: "abcabcabc".into(),
                needle: "abc".into(),
            },
        ),
        (
            "palin ∧ prefix",
            Constraint::All(vec![
                Constraint::Palindrome { len: 3 },
                Constraint::Prefix {
                    prefix: "a".into(),
                    len: 3,
                },
            ]),
        ),
    ];

    let samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(SimulatedAnnealer::new().with_seed(1).with_num_reads(64)),
        Box::new(
            SimulatedQuantumAnnealer::new()
                .with_seed(1)
                .with_num_reads(32),
        ),
        Box::new(ParallelTempering::new().with_seed(1).with_rounds(64)),
        Box::new(TabuSearch::new().with_seed(1).with_num_reads(16)),
        Box::new(SteepestDescent::new().with_seed(1).with_num_reads(64)),
        Box::new(PopulationAnnealer::new().with_seed(1).with_population(64)),
        Box::new(RandomSampler::new().with_seed(1).with_num_reads(64)),
    ];

    println!(
        "{:<18} {:<28} {:>8} {:>8} {:>6} {:>12}",
        "workload", "sampler", "p(gs)", "R99", "reads", "TTS(99%)"
    );
    for (wname, constraint) in &workloads {
        let problem = constraint.encode().expect("encodes");
        let (ground, _) = ExactSolver::new().ground_states(&problem.qubo);
        for sampler in &samplers {
            let t0 = Instant::now();
            let set = sampler.sample(&problem.qubo);
            let elapsed = t0.elapsed();
            let per_read = elapsed / set.total_reads().max(1);
            let p = ground_state_probability(&set, ground, 1e-9);
            let r99 = repetitions_to_confidence(p, 0.99);
            let tts = time_to_solution(&set, ground, 1e-9, per_read, 0.99);
            println!(
                "{:<18} {:<28} {:>7.1}% {:>8} {:>6} {:>12}",
                wname,
                sampler.name(),
                p * 100.0,
                r99.map_or("∞".to_string(), |r| r.to_string()),
                set.total_reads(),
                tts.map_or("—".to_string(), |d| format!("{d:.1?}")),
            );
        }
        println!();
    }
}
