//! # qsmt-smtlib — SMT-LIB v2 front end for the quantum string solver
//!
//! Makes the system consumable as an *SMT solver*: scripts in the SMT-LIB
//! string-theory fragment are lexed, parsed, sort-checked, and compiled to
//! the QUBO constraint pipelines of `qsmt-core`.
//!
//! Supported fragment (one goal per declared constant):
//!
//! * `(= x "lit")` and ground transformation chains over literals —
//!   `str.++`, `str.rev`, `str.replace`, `str.replace_all` — which lower
//!   to the paper's §4.12 sequential pipelines;
//! * `(= p (str.rev p))` + `(= (str.len p) N)` → palindrome generation;
//! * `(str.in_re x ⟨re⟩)` + length → regex matching (with `str.to_re`,
//!   `re.+`, `re.*`, `re.opt`, `re.union`, `re.++`, `re.range`,
//!   `re.allchar`);
//! * `(str.contains x "s")` + length → substring matching;
//! * `(= i (str.indexof "hay" "needle" 0))` → string includes;
//! * a bare length assertion → printable string generation.
//!
//! ```
//! use qsmt_core::StringSolver;
//! use qsmt_smtlib::{SatStatus, Script};
//!
//! let script = Script::parse(r#"
//!     (set-logic QF_S)
//!     (declare-const x String)
//!     (assert (= x (str.rev "hello")))
//!     (check-sat)
//!     (get-model)
//! "#).unwrap();
//! let out = script.solve(&StringSolver::with_defaults().with_seed(3)).unwrap();
//! assert_eq!(out.status, SatStatus::Sat);
//! assert_eq!(out.model[0].1.to_string(), "\"olleh\"");
//! ```

#![warn(missing_docs)]

mod absint;
mod ast;
mod compile;
mod lexer;
mod script;
mod sexpr;

pub use absint::{apply_tightenings, lower, AbsintRun};

pub use ast::{AstError, Command, RegLan, Sort, Term};
pub use compile::{compile, reglan_to_regex, CompileError, Goal};
pub use lexer::{lex, LexError, Token};
pub use script::{GoalLint, ModelValue, SatStatus, Script, ScriptError, ScriptOutcome};
pub use sexpr::{parse_sexprs, SExpr, SExprError};
