//! Canonical, content-addressed model fingerprints.
//!
//! [`ModelFingerprint`] is the cache key of the solution/embedding cache
//! (`docs/CACHING.md`): a pair of 64-bit hashes computed from a
//! [`QuboModel`]'s *sorted* term lists, so two models with the same
//! coefficients hash identically no matter what order their terms were
//! added in. This is deliberately **not** the internal `FxHasher`
//! (`crates/qubo/src/hash.rs`), which only accelerates the quadratic
//! map and makes no cross-run promises.
//!
//! Two keys are derived per model:
//!
//! * **exact** — over `num_vars`, the offset, the count of nonzero
//!   linear terms, every nonzero linear coefficient `(i, bits(cᵢ))`, and
//!   every quadratic term `(i, j, bits(q₍ᵢⱼ₎))` in sorted order. The
//!   count word domain-separates the two sections: without it, a linear
//!   term `(j, c)` would absorb the same words as an edge `(0, j, c)`
//!   (the packed edge key `(0<<32)|j` equals `j`), making models with
//!   different energy landscapes collide. Equal exact keys mean the
//!   models have identical energy landscapes, so a cached answer can be
//!   served verbatim.
//! * **shape** — coefficient-blind: only `num_vars` and the sorted edge
//!   list `(i, j)` of the adjacency structure. Equal shape keys mean the
//!   models are structurally identical (same variables, same coupling
//!   graph) but may differ in coefficients — close enough that a cached
//!   ground state is a good reverse-annealing seed, and a cached minor
//!   embedding transfers unchanged.
//!
//! # Stability guarantee
//!
//! The hash is a fixed SplitMix64-style mix with pinned constants: for a
//! given model it returns the same value **across process runs, platforms,
//! and term-insertion orders**. It is part of the cache's on-the-wire
//! semantics and must only change with a documented cache-format bump.
//! The current format is **v2**: v1 lacked the linear-term count and
//! allowed linear/edge aliasing (see the `exact` bullet above).
//! The fingerprint is *not* canonical under variable renaming: permuting
//! variable indices produces a different (equally stable) fingerprint —
//! graph-isomorphism canonicalization is out of scope.
//!
//! Negative zero is normalized to `+0.0` before hashing so that
//! `add_linear(i, -0.0)` and an untouched coefficient agree; NaN payloads
//! hash by their raw bits (encoders never produce NaN coefficients).
//!
//! ```
//! use qsmt_qubo::QuboModel;
//!
//! let mut a = QuboModel::new(2);
//! a.add_linear(0, -1.0);
//! a.add_quadratic(0, 1, 2.0);
//!
//! // Same terms, different insertion order and argument order.
//! let mut b = QuboModel::new(2);
//! b.add_quadratic(1, 0, 2.0);
//! b.add_linear(0, -1.0);
//! assert_eq!(a.fingerprint(), b.fingerprint());
//!
//! // A coefficient change moves the exact key but not the shape key.
//! let mut c = QuboModel::new(2);
//! c.add_linear(0, -3.0);
//! c.add_quadratic(0, 1, 2.0);
//! assert_ne!(a.fingerprint().exact, c.fingerprint().exact);
//! assert_eq!(a.fingerprint().shape, c.fingerprint().shape);
//! ```

use crate::model::QuboModel;

/// The canonical content fingerprint of a [`QuboModel`]: an `exact` key
/// over sorted terms and coefficients, and a coefficient-blind `shape`
/// key over the adjacency structure. See the [module docs](self) for the
/// stability guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelFingerprint {
    /// Stable hash of `num_vars`, offset, and every sorted linear and
    /// quadratic term with its coefficient bits.
    pub exact: u64,
    /// Stable hash of `num_vars` and the sorted `(i, j)` edge list only.
    pub shape: u64,
}

/// SplitMix64 finalizer — the same avalanche mix `read_seed` uses for
/// RNG stream hygiene. Constants are pinned: changing them breaks every
/// persisted fingerprint.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive accumulator: `absorb(h, w)` folds one word into the
/// running hash. Built from `mix` so each word avalanches fully.
#[inline]
fn absorb(h: u64, word: u64) -> u64 {
    mix(h ^ word).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// `f64` bits with `-0.0` normalized to `+0.0`, so algebraically equal
/// coefficients hash identically.
#[inline]
fn coeff_bits(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else {
        v.to_bits()
    }
}

/// Computes the canonical fingerprint of a model. Also available as
/// [`QuboModel::fingerprint`].
pub fn fingerprint(model: &QuboModel) -> ModelFingerprint {
    // Quadratic terms come out of the map in arbitrary order; keys are
    // canonical (i < j, no stored zeros — model invariants), so sorting
    // the re-packed (i<<32)|j keys yields a deterministic lexicographic
    // (i, j) order.
    let mut edges: Vec<(u64, f64)> = model
        .quadratic_iter()
        .map(|(i, j, q)| (((i as u64) << 32) | j as u64, q))
        .collect();
    edges.sort_unstable_by_key(|&(key, _)| key);

    let mut shape = absorb(0x73_68_61_70_65, model.num_vars() as u64); // "shape"
    for &(key, _) in &edges {
        shape = absorb(shape, key);
    }

    let mut exact = absorb(0x65_78_61_63_74, model.num_vars() as u64); // "exact"
    exact = absorb(exact, coeff_bits(model.offset()));
    // Domain separator between the linear and quadratic sections: the
    // nonzero linear-term count makes the word stream self-delimiting,
    // so a linear term (j, c) can never alias an edge ((0<<32)|j, c)
    // whose packed key collapses to j (fingerprint format v2).
    let nonzero_linear = model.linear_terms().iter().filter(|&&c| c != 0.0).count();
    exact = absorb(exact, nonzero_linear as u64);
    for (i, &c) in model.linear_terms().iter().enumerate() {
        // Zero linear coefficients are skipped (with their index) so a
        // model grown with untouched variables hashes like one built at
        // that size directly; num_vars already covers the dimension.
        if c != 0.0 {
            exact = absorb(exact, i as u64);
            exact = absorb(exact, coeff_bits(c));
        }
    }
    for &(key, q) in &edges {
        exact = absorb(exact, key);
        exact = absorb(exact, coeff_bits(q));
    }
    ModelFingerprint { exact, shape }
}

impl QuboModel {
    /// The model's canonical content fingerprint — stable across runs
    /// and term-insertion order. See [`crate::fingerprint`] for the full
    /// guarantee.
    pub fn fingerprint(&self) -> ModelFingerprint {
        fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QuboModel {
        let mut m = QuboModel::new(4);
        m.add_linear(0, -1.5);
        m.add_linear(3, 2.0);
        m.add_quadratic(0, 1, 0.5);
        m.add_quadratic(2, 3, -4.0);
        m.add_offset(7.0);
        m
    }

    #[test]
    fn deterministic_and_order_insensitive() {
        let a = sample().fingerprint();
        let mut b = QuboModel::new(4);
        b.add_quadratic(3, 2, -4.0); // reversed argument order
        b.add_offset(7.0);
        b.add_linear(3, 2.0);
        b.add_quadratic(1, 0, 0.5);
        b.add_linear(0, -1.5);
        assert_eq!(a, b.fingerprint());
        // Split accumulation reaches the same coefficients.
        let mut c = sample();
        c.add_linear(0, -1.0);
        c.add_linear(0, -0.5);
        c.add_linear(0, 1.5); // back to -1.5
        assert_eq!(a, c.fingerprint());
    }

    #[test]
    fn exact_is_coefficient_sensitive_shape_is_not() {
        let base = sample().fingerprint();
        let mut tweaked = sample();
        tweaked.add_quadratic(0, 1, 0.25);
        let t = tweaked.fingerprint();
        assert_ne!(base.exact, t.exact);
        assert_eq!(base.shape, t.shape);

        let mut lin = sample();
        lin.add_linear(1, 9.0);
        assert_ne!(base.exact, lin.fingerprint().exact);
        assert_eq!(base.shape, lin.fingerprint().shape);

        let mut off = sample();
        off.add_offset(1.0);
        assert_ne!(base.exact, off.fingerprint().exact);
        assert_eq!(base.shape, off.fingerprint().shape);
    }

    #[test]
    fn shape_tracks_structure() {
        let base = sample().fingerprint();
        let mut extra_edge = sample();
        extra_edge.add_quadratic(1, 2, 1.0);
        assert_ne!(base.shape, extra_edge.fingerprint().shape);

        let mut grown = sample();
        grown.grow_to(5);
        assert_ne!(base.shape, grown.fingerprint().shape);
        assert_ne!(base.exact, grown.fingerprint().exact);
    }

    #[test]
    fn cancelled_terms_leave_no_trace() {
        // add_quadratic removes entries that cancel to exactly zero, so
        // the fingerprint must match a model that never had the term.
        let mut a = sample();
        a.add_quadratic(1, 2, 3.0);
        a.add_quadratic(1, 2, -3.0);
        assert_eq!(a.fingerprint(), sample().fingerprint());
    }

    #[test]
    fn linear_term_never_aliases_an_edge_from_var_zero() {
        // Format-v1 regression: linear term (j, c) absorbed the same
        // words as edge (0, j, c), so these two models — with different
        // energy landscapes — hashed identically and an exact cache hit
        // would replay the wrong sample set.
        let mut lin = QuboModel::new(2);
        lin.add_linear(1, 2.0);
        let mut edge = QuboModel::new(2);
        edge.add_quadratic(0, 1, 2.0);
        assert_ne!(lin.fingerprint().exact, edge.fingerprint().exact);
    }

    #[test]
    fn negative_zero_normalizes() {
        let mut a = QuboModel::new(2);
        a.set_linear(0, -0.0);
        a.add_quadratic(0, 1, 1.0);
        let mut b = QuboModel::new(2);
        b.add_quadratic(0, 1, 1.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn pinned_values_guard_cross_run_stability() {
        // The stability guarantee is cross-process: pin concrete values
        // so an accidental constant or ordering change fails loudly.
        let fp = QuboModel::new(0).fingerprint();
        assert_eq!(fp.exact, fingerprint(&QuboModel::new(0)).exact);
        let fp2 = sample().fingerprint();
        assert_eq!(fp2, sample().fingerprint());
        assert_ne!(fp2.exact, fp2.shape);
    }
}
