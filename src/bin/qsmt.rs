//! `qsmt` — command-line quantum string SMT solver.
//!
//! ```text
//! qsmt solve <file.smt2> [--sampler NAME] [--seed N] [--reads N]
//!                        [--stats] [--report <path>] [--trace [out.json]]
//!                        [--lint] [--no-absint] [--portfolio]
//! qsmt lint  <file.smt2> [--format text|json] [--no-absint]  # static analysis
//! qsmt dump  <file.smt2> [--goal K]        # print a goal's QUBO (qbsolv format)
//! qsmt demo                                 # solve the built-in Table 1 script
//! qsmt bench [--quick] [--out PATH] [--seed N] [--replicas N]
//!            [--check-overhead] [--check-replicas]
//!            [--check-trace-overhead]        # annealing perf baseline
//! qsmt serve --metrics-addr ADDR [--seed N] [--workers N] [--queue-depth N]
//!            [--job-timeout MS] [--run-store PATH]  # solve service + metrics
//! qsmt submit ADDR <file.smt2> [--seed N] [--reads N] [--job-timeout MS]
//!             [--trace <out.json>]
//! qsmt watch ADDR [--format text|json]       # scrape a running endpoint
//! qsmt history <store.jsonl> [--recent N] [--baseline N] [--threshold PCT]
//! ```
//!
//! Samplers: `sa` (default), `sqa`, `pt`, `tabu`, `descent`, `exact`,
//! `population`, `random`.
//!
//! Observability (documented in `docs/OBSERVABILITY.md`): `--stats` prints
//! per-stage timings and sampler statistics for every solve, `--report
//! <path>` writes the full JSON run report (schema v9, with a `trace_id`
//! and per-stage `span_us` rollup), `--trace` prints the raw span/event
//! log, and `--trace <out.json>` instead runs the solve under a trace id
//! and writes its spans as Chrome trace-event JSON, loadable in Perfetto.
//! `qsmt history` turns a `--run-store` JSONL file into per-stage latency
//! percentiles with regression verdicts (non-zero exit on drift).
//!
//! Portfolio solving (documented in `docs/PORTFOLIO.md`): `--portfolio`
//! on `solve`/`demo` races a structure-routed portfolio of strategies
//! per goal, cancelling the losers the instant one member returns a
//! satisfying assignment; on `serve` it flips the service default
//! (individual jobs override with `?portfolio=`), and on `submit` it
//! requests portfolio mode for the submitted job.
//!
//! Static analysis (documented in `docs/LINTS.md`): `qsmt lint` compiles
//! every goal's QUBO and runs the formulation linter without sampling,
//! exiting nonzero when any error-level diagnostic fires; `--lint` on
//! `solve`/`demo` enables deny-on-error mode, refusing to sample an
//! encoding the linter can prove unsound.

use qsmt::anneal::{
    ExactSolver, ParallelTempering, PopulationAnnealer, RandomSampler, Sampler, SimulatedAnnealer,
    SimulatedQuantumAnnealer, SteepestDescent, TabuSearch,
};
use qsmt::smtlib::Goal;
use qsmt::telemetry::{Json, RunReport, TraceDisplay};
use qsmt::{Script, StringSolver};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "\
qsmt — quantum-based SMT solving for string theory

USAGE:
  qsmt solve <file.smt2> [--sampler NAME] [--seed N] [--reads N]
                         [--stats] [--report <path>] [--trace [out.json]]
                         [--lint] [--no-absint] [--portfolio]
  qsmt lint  <file.smt2> [--format text|json] [--no-absint]
  qsmt dump  <file.smt2> [--goal K]
  qsmt demo  [--sampler NAME] [--seed N] [--reads N]
             [--stats] [--report <path>] [--trace [out.json]] [--lint]
             [--no-absint] [--portfolio]
  qsmt bench [--quick] [--out <path>] [--seed N] [--replicas N]
             [--check-overhead] [--check-replicas] [--check-trace-overhead]
  qsmt serve --metrics-addr <host:port> [--seed N] [--workers N]
             [--queue-depth N] [--job-timeout MS] [--max-requests N]
             [--cache-entries N] [--no-cache] [--run-store <path>]
             [--portfolio]
  qsmt submit <host:port> <file.smt2> [--seed N] [--reads N]
              [--job-timeout MS] [--trace <out.json>] [--portfolio]
  qsmt watch <host:port> [--format text|json]
  qsmt history <store.jsonl> [--recent N] [--baseline N] [--threshold PCT]

SAMPLERS:
  sa (default) | sqa | pt | tabu | descent | exact | population | random

OBSERVABILITY (see docs/OBSERVABILITY.md):
  --stats          print per-stage timings, sampler statistics, and
                   trajectory-dynamics summaries (stall verdict, latency
                   and improvement percentiles)
  --report <path>  write the full JSON run report to <path> (schema v9:
                   carries the run's trace_id and a per-stage span_us
                   latency rollup)
  --trace          print the raw span/event log of every solve;
                   `--trace <out.json>` instead runs the solve under a
                   trace id and writes its spans — every report stage
                   plus per-read sampler spans — as Chrome trace-event
                   JSON (open in Perfetto or chrome://tracing)
  --flight <path>  on solve failure, dump the flight-recorder ring
                   buffer to <path> as JSON

SOLVE SERVICE (see docs/OBSERVABILITY.md):
  qsmt serve       concurrent solve service + live metrics: POST /solve
                   enqueues SMT-LIB scripts into a bounded queue drained
                   by --workers threads, answering 202 with a job id and
                   a per-job trace id; GET /jobs/<id> returns status and
                   the schema-v9 run report; GET /jobs/<id>/trace serves
                   the job's spans as Chrome trace-event JSON and
                   GET /traces indexes recent traces; a full queue
                   answers 429 with Retry-After; per-job deadlines cancel
                   mid-anneal; SIGINT or --max-requests drains
                   gracefully. Repeat submissions are answered from a
                   fingerprint-keyed solution cache (docs/CACHING.md):
                   --cache-entries N sizes it (default 256), --no-cache
                   disables it. --run-store <path> appends every finished
                   run report to a bounded JSONL history that `qsmt
                   history` analyzes. Also exposes /metrics (Prometheus
                   text format), /flight (JSON ring buffer), and /healthz
                   (queue depth + worker count) on --metrics-addr; port 0
                   picks a free port and prints it
  qsmt submit      blocking client: POST a script to a running service,
                   poll the job to a terminal state, print its final
                   status document (non-zero exit on reject/fail/timeout);
                   --trace <out.json> then fetches the finished job's
                   Chrome trace-event JSON and writes it to <out.json>
  qsmt watch       one-shot scrape of a running serve endpoint
                   (--format json fetches /flight instead of /metrics);
                   warns when the flight-recorder ring wrapped and
                   dropped events; connect/read timeouts make it a
                   usable health probe
  qsmt history     per-stage latency percentiles (p50/p90/p99) over a
                   --run-store JSONL file, comparing the newest --recent
                   N runs (default 5) against the --baseline N runs
                   before them (default 20); exits non-zero when any
                   stage's recent p50 drifted more than --threshold PCT
                   (default 25) above its baseline

BENCHMARKS (see docs/PERFORMANCE.md):
  qsmt bench       run the annealing benchmark harness and write a
                   schema-validated BENCH_annealing.json (kernel-vs-naive
                   sweep throughput, bit-sliced replica scaling,
                   per-sampler rates, time-to-ground per formulation)
  --quick          CI smoke mode: shrink every workload
  --out <path>     output path (default BENCH_annealing.json)
  --replicas N     pin the replica-scaling ladder to one width (1..=64)
                   instead of the default 1/8/64 sweep
  --check-overhead fail unless the disabled trajectory-probe path stays
                   within 2% of plain sampling (retries on noisy hosts)
  --check-replicas fail unless bit-sliced 64-replica sweeps deliver at
                   least the gated effective-flips speedup over the
                   scalar kernel (retries on noisy hosts)
  --check-trace-overhead
                   fail unless an inert qsmt-trace span per sweep stays
                   within 1% of the plain sweep loop — keeps the solver's
                   tracing instrumentation free for untraced solves
                   (retries on noisy hosts)

STATIC ANALYSIS (see docs/LINTS.md):
  qsmt lint        run the formulation linter over every goal's compiled
                   QUBO without sampling; exits nonzero on error-level
                   diagnostics (--format json for machine-readable output)
  --lint           deny-on-error mode for solve/demo: refuse to sample an
                   encoding the linter can prove unsound

ABSTRACT INTERPRETATION (see docs/ABSINT.md):
  solve/demo/lint run a script-level abstract-interpretation pass by
  default: statically refuted scripts answer unsat immediately with a
  replay-checked certificate, proven character pins shrink the QUBO
  before presolve, and the report gains an `absint` section (schema v6)
  --no-absint      skip the pass (compile every goal as written)
  --absint         force the default on explicitly

PORTFOLIO SOLVING (see docs/PORTFOLIO.md):
  --portfolio      solve/demo: race a structure-routed portfolio of
                   strategies per goal (exact enumeration on small
                   models, simulated + simulated-quantum annealing
                   otherwise), cancelling losers the instant one member
                   returns a satisfying assignment; the report's
                   `portfolio` section (schema v9) records the routing
                   decision and per-member outcomes. serve: make
                   portfolio racing the service default (per-job
                   `?portfolio=` still overrides). submit: request
                   portfolio mode for the submitted job
";

const DEMO: &str = r#"
(set-logic QF_S)
(declare-const row1 String)
(assert (= row1 (str.replace_all (str.rev "hello") "e" "a")))
(declare-const row2 String)
(assert (= row2 (str.rev row2)))
(assert (= (str.len row2) 6))
(declare-const row3 String)
(assert (str.in_re row3 (re.++ (str.to_re "a")
                               (re.+ (re.union (str.to_re "b") (str.to_re "c"))))))
(assert (= (str.len row3) 5))
(declare-const row4 String)
(assert (= row4 (str.replace_all (str.++ "hello" " " "world") "l" "x")))
(declare-const row5 String)
(assert (str.contains row5 "hi"))
(assert (= (str.len row5) 6))
(check-sat)
(get-model)
"#;

struct Options {
    sampler: String,
    seed: u64,
    /// Whether `--seed` was given explicitly (submit only forwards it then).
    seed_set: bool,
    reads: usize,
    /// Whether `--reads` was given explicitly.
    reads_set: bool,
    goal: usize,
    stats: bool,
    report: Option<String>,
    trace: bool,
    /// Chrome trace-event output path (`--trace <out.json>`); None keeps
    /// the plain text span log.
    trace_out: Option<String>,
    lint: bool,
    format: String,
    quick: bool,
    out: Option<String>,
    metrics_addr: Option<String>,
    flight: Option<String>,
    max_requests: Option<u64>,
    check_overhead: bool,
    /// Replica ladder override for `bench` (`--replicas N`); None runs
    /// the default 1/8/64 scaling ladder.
    replicas: Option<usize>,
    check_replicas: bool,
    workers: usize,
    queue_depth: usize,
    job_timeout_ms: u64,
    /// Whether `--job-timeout` was given explicitly.
    job_timeout_set: bool,
    /// Solve-cache capacity for `serve`; 0 means `--no-cache`.
    cache_entries: usize,
    /// Script-level abstract interpretation before compiling
    /// (`--no-absint` opts out; see docs/ABSINT.md).
    absint: bool,
    /// Run-history JSONL path for `serve` (`--run-store`).
    run_store: Option<String>,
    check_trace_overhead: bool,
    /// `history` recent-window size (`--recent N`).
    recent: usize,
    /// `history` baseline-window size (`--baseline N`).
    baseline: usize,
    /// `history` allowed fractional p50 drift (`--threshold PCT` / 100).
    threshold: f64,
    /// Portfolio racing (`--portfolio`): solve/demo race a routed
    /// portfolio per goal, serve flips its default, submit requests it
    /// per job (see docs/PORTFOLIO.md).
    portfolio: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            sampler: "sa".into(),
            seed: 0,
            seed_set: false,
            reads: 64,
            reads_set: false,
            goal: 0,
            stats: false,
            report: None,
            trace: false,
            trace_out: None,
            lint: false,
            format: "text".into(),
            quick: false,
            out: None,
            metrics_addr: None,
            flight: None,
            max_requests: None,
            check_overhead: false,
            replicas: None,
            check_replicas: false,
            workers: 4,
            queue_depth: 16,
            job_timeout_ms: 30_000,
            job_timeout_set: false,
            cache_entries: 256,
            absint: true,
            run_store: None,
            check_trace_overhead: false,
            recent: 5,
            baseline: 20,
            threshold: 0.25,
            portfolio: false,
        }
    }
}

impl Options {
    /// True when any observability surface was requested, which routes
    /// the solve through the reporting path.
    fn wants_telemetry(&self) -> bool {
        self.stats || self.trace || self.report.is_some()
    }
}

fn parse_flags(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--sampler" => opts.sampler = value("--sampler")?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
                opts.seed_set = true;
            }
            "--reads" => {
                opts.reads = value("--reads")?
                    .parse()
                    .map_err(|_| "--reads expects an integer".to_string())?;
                opts.reads_set = true;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
                if opts.workers == 0 {
                    return Err("--workers expects at least 1".into());
                }
            }
            "--queue-depth" => {
                opts.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth expects an integer".to_string())?;
                if opts.queue_depth == 0 {
                    return Err("--queue-depth expects at least 1".into());
                }
            }
            "--job-timeout" => {
                opts.job_timeout_ms = value("--job-timeout")?
                    .parse()
                    .map_err(|_| "--job-timeout expects milliseconds".to_string())?;
                if opts.job_timeout_ms == 0 {
                    return Err("--job-timeout expects at least 1 ms".into());
                }
                opts.job_timeout_set = true;
            }
            "--goal" => {
                opts.goal = value("--goal")?
                    .parse()
                    .map_err(|_| "--goal expects an index".to_string())?;
            }
            "--stats" => opts.stats = true,
            "--quick" => opts.quick = true,
            "--out" => opts.out = Some(value("--out")?),
            "--report" => opts.report = Some(value("--report")?),
            "--trace" => {
                opts.trace = true;
                // Optional value: `--trace out.json` writes Chrome
                // trace-event JSON there instead of printing the text
                // span log. Peek so a following flag keeps its meaning.
                if it
                    .clone()
                    .next()
                    .is_some_and(|next| !next.starts_with("--"))
                {
                    opts.trace_out = it.next().cloned();
                }
            }
            "--lint" => opts.lint = true,
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
            "--flight" => opts.flight = Some(value("--flight")?),
            "--max-requests" => {
                opts.max_requests = Some(
                    value("--max-requests")?
                        .parse()
                        .map_err(|_| "--max-requests expects an integer".to_string())?,
                );
            }
            "--cache-entries" => {
                opts.cache_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|_| "--cache-entries expects an integer".to_string())?;
            }
            "--no-cache" => opts.cache_entries = 0,
            "--run-store" => opts.run_store = Some(value("--run-store")?),
            "--check-trace-overhead" => opts.check_trace_overhead = true,
            "--recent" => {
                opts.recent = value("--recent")?
                    .parse()
                    .map_err(|_| "--recent expects an integer".to_string())?;
                if opts.recent == 0 {
                    return Err("--recent expects at least 1".into());
                }
            }
            "--baseline" => {
                opts.baseline = value("--baseline")?
                    .parse()
                    .map_err(|_| "--baseline expects an integer".to_string())?;
                if opts.baseline == 0 {
                    return Err("--baseline expects at least 1".into());
                }
            }
            "--threshold" => {
                let pct: f64 = value("--threshold")?
                    .parse()
                    .map_err(|_| "--threshold expects a percentage".to_string())?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err("--threshold expects a positive percentage".into());
                }
                opts.threshold = pct / 100.0;
            }
            "--absint" => opts.absint = true,
            "--no-absint" => opts.absint = false,
            "--portfolio" => opts.portfolio = true,
            "--check-overhead" => opts.check_overhead = true,
            "--replicas" => {
                let n: usize = value("--replicas")?
                    .parse()
                    .map_err(|_| "--replicas expects an integer".to_string())?;
                if !(1..=64).contains(&n) {
                    return Err("--replicas expects 1..=64 (one bit-sliced word)".into());
                }
                opts.replicas = Some(n);
            }
            "--check-replicas" => opts.check_replicas = true,
            "--format" => {
                let fmt = value("--format")?;
                if fmt != "text" && fmt != "json" {
                    return Err(format!("--format expects text or json, got {fmt:?}"));
                }
                opts.format = fmt;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn make_sampler(opts: &Options) -> Result<Arc<dyn Sampler>, String> {
    Ok(match opts.sampler.as_str() {
        "sa" => Arc::new(
            SimulatedAnnealer::new()
                .with_seed(opts.seed)
                .with_num_reads(opts.reads)
                .with_sweeps(384),
        ),
        "sqa" => Arc::new(
            SimulatedQuantumAnnealer::new()
                .with_seed(opts.seed)
                .with_num_reads(opts.reads.max(1)),
        ),
        "pt" => Arc::new(
            ParallelTempering::new()
                .with_seed(opts.seed)
                .with_rounds(opts.reads.max(2)),
        ),
        "tabu" => Arc::new(
            TabuSearch::new()
                .with_seed(opts.seed)
                .with_num_reads(opts.reads.clamp(1, 64)),
        ),
        "descent" => Arc::new(
            SteepestDescent::new()
                .with_seed(opts.seed)
                .with_num_reads(opts.reads),
        ),
        "exact" => Arc::new(ExactSolver::new()),
        "population" => Arc::new(
            PopulationAnnealer::new()
                .with_seed(opts.seed)
                .with_population(opts.reads.max(2)),
        ),
        "random" => Arc::new(
            RandomSampler::new()
                .with_seed(opts.seed)
                .with_num_reads(opts.reads),
        ),
        other => return Err(format!("unknown sampler {other:?}")),
    })
}

/// Dumps the flight-recorder ring buffer to `path` (used on solve
/// failure so the last recorded breadcrumbs survive the crash).
fn dump_flight(path: &str) {
    let doc = qsmt::metrics::global_flight().to_json().pretty();
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("flight recording written to {path}"),
        Err(e) => eprintln!("cannot write flight recording to {path}: {e}"),
    }
}

fn run_solve(source: &str, source_name: &str, opts: &Options) -> Result<(), String> {
    let flight = qsmt::metrics::global_flight();
    flight.record_detail("solve.start", 0.0, source_name);
    let result = run_solve_inner(source, source_name, opts);
    match &result {
        Ok(()) => flight.record("solve.done", 0.0),
        Err(e) => {
            flight.record_detail("solve.error", 1.0, e);
            if let Some(path) = &opts.flight {
                dump_flight(path);
            }
        }
    }
    result
}

fn run_solve_inner(source: &str, source_name: &str, opts: &Options) -> Result<(), String> {
    let script = Script::parse(source).map_err(|e| e.to_string())?;
    // Portfolio mode routes its own sampler per race member, so the base
    // solver only contributes the seed member streams derive from and
    // the lint gate (`--sampler` is ignored).
    let solver = if opts.portfolio {
        StringSolver::with_defaults()
            .with_seed(opts.seed)
            .with_deny_lint_errors(opts.lint)
    } else {
        StringSolver::new(make_sampler(opts)?).with_deny_lint_errors(opts.lint)
    };
    // Samplers with hard limits (the exact enumerator caps at 26
    // variables) signal misuse by panicking; surface that as a normal
    // CLI error instead of a crash.
    let surface_panic = |payload: Box<dyn std::any::Any + Send>| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_else(|| "sampler rejected the problem".to_string());
        format!(
            "sampler {:?} cannot solve this problem: {msg}",
            opts.sampler
        )
    };
    // `--trace <out.json>`: run the whole solve under a local trace so
    // the same span machinery the serve path uses records every report
    // stage and per-read sampler span, then export Chrome trace-event
    // JSON below (docs/OBSERVABILITY.md).
    let trace_scope = opts.trace_out.as_ref().map(|_| {
        let id = qsmt::trace::TraceId::derive(opts.seed);
        (id, qsmt::trace::enter(id, source_name))
    });
    let started = Instant::now();
    let (outcome, goals, absint_run) = if opts.portfolio {
        if !opts.absint {
            return Err("--portfolio needs the script-level absint pass (drop --no-absint)".into());
        }
        let portfolio = qsmt::default_portfolio();
        let (outcome, goals, run) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            script.solve_portfolio_reported_absint(&solver, &portfolio)
        }))
        .map_err(surface_panic)?
        .map_err(|e| e.to_string())?;
        (outcome, goals, Some(run))
    } else if opts.absint {
        if opts.wants_telemetry() {
            let (outcome, goals, run) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    script.solve_reported_absint(&solver)
                }))
                .map_err(surface_panic)?
                .map_err(|e| e.to_string())?;
            (outcome, goals, Some(run))
        } else {
            let (outcome, run) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                script.solve_absint(&solver)
            }))
            .map_err(surface_panic)?
            .map_err(|e| e.to_string())?;
            (outcome, Vec::new(), Some(run))
        }
    } else if opts.wants_telemetry() {
        let (outcome, goals) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            script.solve_reported(&solver)
        }))
        .map_err(surface_panic)?
        .map_err(|e| e.to_string())?;
        (outcome, goals, None)
    } else {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| script.solve(&solver)))
                .map_err(surface_panic)?
                .map_err(|e| e.to_string())?;
        (outcome, Vec::new(), None)
    };
    let elapsed_us = started.elapsed().as_micros() as u64;
    let trace_id = trace_scope.as_ref().map(|(id, _)| *id);
    if let Some((id, guard)) = trace_scope {
        // Dropping the guard drains the thread's span buffer into the
        // process registry; only then is the export complete.
        drop(guard);
        let path = opts.trace_out.as_deref().expect("trace_out implies path");
        let doc = qsmt::trace::registry()
            .chrome_json(id)
            .ok_or_else(|| "trace was evicted before export".to_string())?;
        std::fs::write(path, doc.pretty())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("trace written to {path}");
    }
    let refuted_statically = absint_run
        .as_ref()
        .is_some_and(qsmt::smtlib::AbsintRun::is_refuted);

    println!("{}", outcome.status);
    if !outcome.model.is_empty() {
        println!("(model");
        for (name, value) in &outcome.model {
            println!("  (define-fun {name} () _ {value})");
        }
        println!(")");
    }

    if opts.stats {
        if let Some(run) = &absint_run {
            let stats = run.to_stats();
            println!(
                "; absint: verdict {}, {} iteration(s), {} narrowing(s), {} vars eliminated, {} certificate step(s), {:.3} ms",
                stats.verdict,
                stats.iterations,
                stats.domains_narrowed,
                stats.vars_eliminated,
                stats.certificate_steps,
                stats.time_us as f64 / 1000.0
            );
        }
        for goal in &goals {
            println!(
                "; goal {} ({}): {} solve(s), {:.3} ms",
                goal.name,
                goal.kind.as_str(),
                goal.solves.len(),
                goal.total_us as f64 / 1000.0
            );
            for solve in &goal.solves {
                for line in solve.render_stats().lines() {
                    println!("; {line}");
                }
            }
        }
    }
    if opts.trace && opts.trace_out.is_none() {
        for goal in &goals {
            for solve in &goal.solves {
                println!("; trace for goal {} — {}", goal.name, solve.constraint);
                for line in TraceDisplay(&solve.spans).to_string().lines() {
                    println!("; {line}");
                }
            }
        }
    }
    if let Some(path) = &opts.report {
        let report = RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            source: source_name.to_string(),
            status: outcome.status.to_string(),
            sampler: solver.sampler_name().to_string(),
            // The one-shot CLI path runs cache-less; a run is served by
            // the static analyzer (a confirmed refutation), attributed
            // to the portfolio member that won its races, or credited to
            // the solver itself.
            served_from: if refuted_statically {
                "absint".to_string()
            } else if opts.portfolio {
                let mut winners: Vec<&str> = goals
                    .iter()
                    .flat_map(|g| g.solves.iter())
                    .filter_map(|s| s.portfolio.as_ref())
                    .map(|p| p.winner.as_str())
                    .collect();
                winners.sort_unstable();
                winners.dedup();
                match winners[..] {
                    [] => "solver".to_string(),
                    [one] => format!("portfolio:{one}"),
                    _ => "portfolio:mixed".to_string(),
                }
            } else {
                "solver".to_string()
            },
            elapsed_us,
            trace_id: trace_id.map(qsmt::trace::TraceId::get),
            absint: absint_run.as_ref().map(qsmt::smtlib::AbsintRun::to_stats),
            goals,
        };
        std::fs::write(path, report.to_json().pretty())
            .map_err(|e| format!("cannot write report to {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

/// `qsmt lint`: static formulation analysis of every goal's compiled
/// QUBO. Returns whether any error-level diagnostic fired (mapped to the
/// process exit code), so formulation defects gate CI without sampling.
fn run_lint(source: &str, source_name: &str, opts: &Options) -> Result<bool, String> {
    let script = Script::parse(source).map_err(|e| e.to_string())?;
    let solver = StringSolver::with_defaults();
    let goals = script.lint(&solver).map_err(|e| e.to_string())?;
    let any_errors = goals.iter().any(qsmt::smtlib::GoalLint::has_errors);
    // Script-level abstract interpretation rides along: informational
    // diagnostics (and the full analysis in JSON mode) that never count
    // toward the error budget — the lint gate stays a formulation gate.
    let absint = opts.absint.then(|| script.absint());

    if opts.format == "json" {
        let goal_values: Vec<Json> = goals
            .iter()
            .map(|g| {
                Json::obj([
                    ("name", Json::Str(g.name.clone())),
                    ("unsat", Json::Bool(g.unsat)),
                    ("has_errors", Json::Bool(g.has_errors())),
                    (
                        "reports",
                        Json::Arr(
                            g.reports
                                .iter()
                                .map(qsmt::core::LintReport::to_json)
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("source", Json::Str(source_name.to_string())),
            ("goals", Json::Arr(goal_values)),
            ("has_errors", Json::Bool(any_errors)),
            (
                "absint",
                absint
                    .as_ref()
                    .map_or(Json::Null, |run| run.analysis.to_json()),
            ),
        ]);
        println!("{}", doc.pretty());
    } else {
        if let Some(run) = &absint {
            println!(
                "script: absint verdict {} ({} iteration(s), {} narrowing(s))",
                run.analysis.verdict.as_str(),
                run.analysis.iterations,
                run.analysis.domains_narrowed
            );
            for d in run.analysis.diagnostics() {
                println!("  info[{}]: {}", d.code, d.message);
            }
        }
        for g in &goals {
            if g.unsat {
                println!("goal {}: unsat at encode time (nothing to lint)", g.name);
                continue;
            }
            for (i, report) in g.reports.iter().enumerate() {
                let stage = if g.reports.len() > 1 {
                    format!(" stage {i}")
                } else {
                    String::new()
                };
                println!("goal {}{stage}: {}", g.name, report.summary());
                for diagnostic in &report.diagnostics {
                    for line in diagnostic.render().lines() {
                        println!("  {line}");
                    }
                }
            }
        }
    }
    Ok(any_errors)
}

fn run_dump(source: &str, opts: &Options) -> Result<(), String> {
    let script = Script::parse(source).map_err(|e| e.to_string())?;
    let goals = script.compile().map_err(|e| e.to_string())?;
    let goal = goals.get(opts.goal).ok_or_else(|| {
        format!(
            "script has {} goals, --goal {} out of range",
            goals.len(),
            opts.goal
        )
    })?;
    let constraint = match goal {
        Goal::StringConstraint { constraint, .. } | Goal::IndexQuery { constraint, .. } => {
            constraint.clone()
        }
        Goal::StringPipeline { name, .. } => {
            return Err(format!(
                "goal {name} is a sequential pipeline; dump its stages individually"
            ))
        }
    };
    let encoded = constraint.encode().map_err(|e| e.to_string())?;
    eprintln!(
        "c goal {} ({}): {}",
        opts.goal,
        goal.name(),
        encoded.description
    );
    print!("{}", qsmt::qubo::to_qbsolv(&encoded.qubo));
    Ok(())
}

/// `qsmt bench`: run the annealing benchmark harness, write the JSON
/// document, then re-read and schema-validate it so a malformed artifact
/// fails the process (and therefore CI) instead of being uploaded.
fn run_bench(opts: &Options) -> Result<(), String> {
    let bench_opts = qsmt::bench::BenchOptions {
        quick: opts.quick,
        seed: opts.seed,
        replicas: opts.replicas,
    };
    let path = opts.out.as_deref().unwrap_or("BENCH_annealing.json");
    // Snapshot the committed baseline (if any) before overwriting it, so
    // the delta print below compares against the previous artifact.
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| qsmt::telemetry::parse(&s).ok());
    eprintln!(
        "running annealing bench ({} mode)…",
        if opts.quick { "quick" } else { "full" }
    );
    let doc = qsmt::bench::run(&bench_opts);
    std::fs::write(path, doc.pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
    let written =
        std::fs::read_to_string(path).map_err(|e| format!("cannot re-read {path}: {e}"))?;
    let reparsed =
        qsmt::telemetry::parse(&written).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    qsmt::bench::validate(&reparsed)
        .map_err(|e| format!("{path} failed schema validation: {e}"))?;
    if let Some(kernel) = reparsed.get("kernel") {
        if let (Some(naive), Some(fast), Some(speedup)) = (
            kernel.get("naive_proposals_per_sec").and_then(Json::as_f64),
            kernel
                .get("kernel_proposals_per_sec")
                .and_then(Json::as_f64),
            kernel.get("speedup").and_then(Json::as_f64),
        ) {
            eprintln!(
                "kernel sweep: {:.2} Mprop/s naive → {:.2} Mprop/s kernel ({speedup:.2}×)",
                naive / 1e6,
                fast / 1e6
            );
            let prior = baseline.as_ref().and_then(|b| {
                b.get("kernel")?
                    .get("kernel_proposals_per_sec")
                    .and_then(Json::as_f64)
            });
            match prior {
                Some(prev) if prev > 0.0 => eprintln!(
                    "delta vs committed baseline: {:+.1}% kernel proposals/sec",
                    (fast / prev - 1.0) * 100.0
                ),
                _ => eprintln!("no committed baseline to compare against"),
            }
        }
    }
    if let Some(mut overhead) = qsmt::bench::disabled_overhead(&reparsed) {
        eprintln!(
            "probe overhead: {:+.2}% disabled path (gate {:.0}%)",
            overhead * 100.0,
            qsmt::bench::MAX_DISABLED_OVERHEAD * 100.0
        );
        if opts.check_overhead {
            // Retry before failing: a genuine probe regression fails every
            // attempt, while a load spike on a busy host passes on retry.
            let mut attempts = 1;
            while overhead > qsmt::bench::MAX_DISABLED_OVERHEAD && attempts < 3 {
                attempts += 1;
                match qsmt::bench::remeasure_disabled_overhead(&bench_opts) {
                    Some(again) => {
                        overhead = again;
                        eprintln!(
                            "probe overhead retry {attempts}: {:+.2}% disabled path",
                            overhead * 100.0
                        );
                    }
                    None => break,
                }
            }
            if overhead > qsmt::bench::MAX_DISABLED_OVERHEAD {
                return Err(format!(
                    "disabled-probe overhead {:.2}% exceeds the {:.0}% gate after {attempts} attempts",
                    overhead * 100.0,
                    qsmt::bench::MAX_DISABLED_OVERHEAD * 100.0
                ));
            }
        }
    } else if opts.check_overhead {
        return Err("bench document lacks probe_overhead.disabled_overhead".into());
    }
    if let Some(mut overhead) = qsmt::bench::trace_overhead(&reparsed) {
        eprintln!(
            "trace overhead: {:+.2}% inert-span path (gate {:.0}%)",
            overhead * 100.0,
            qsmt::bench::MAX_TRACE_OVERHEAD * 100.0
        );
        if opts.check_trace_overhead {
            // Same retry discipline as --check-overhead: a genuine span
            // regression fails every remeasure, a noisy host recovers.
            let mut attempts = 1;
            while overhead > qsmt::bench::MAX_TRACE_OVERHEAD && attempts < 3 {
                attempts += 1;
                match qsmt::bench::remeasure_trace_overhead(&bench_opts) {
                    Some(again) => {
                        overhead = again;
                        eprintln!(
                            "trace overhead retry {attempts}: {:+.2}% inert-span path",
                            overhead * 100.0
                        );
                    }
                    None => break,
                }
            }
            if overhead > qsmt::bench::MAX_TRACE_OVERHEAD {
                return Err(format!(
                    "inert-span trace overhead {:.2}% exceeds the {:.0}% gate after {attempts} attempts",
                    overhead * 100.0,
                    qsmt::bench::MAX_TRACE_OVERHEAD * 100.0
                ));
            }
        }
    } else if opts.check_trace_overhead {
        return Err("bench document lacks trace_overhead.disabled_overhead".into());
    }
    if let Some(mut speedup) = qsmt::bench::replica_speedup(&reparsed) {
        let max_replicas = reparsed
            .get("replica_scaling")
            .and_then(|s| s.get("max_replicas"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        eprintln!(
            "replica scaling: {speedup:.2}× effective flips/s at {max_replicas:.0} \
             replicas/word vs scalar (gate ≥{:.1}×)",
            qsmt::bench::MIN_REPLICA_SPEEDUP
        );
        if opts.check_replicas {
            // Same retry discipline as --check-overhead: a real regression
            // fails every remeasure, a noisy host recovers on retry.
            let mut attempts = 1;
            while speedup < qsmt::bench::MIN_REPLICA_SPEEDUP && attempts < 3 {
                attempts += 1;
                match qsmt::bench::remeasure_replica_speedup(&bench_opts) {
                    Some(again) => {
                        speedup = again;
                        eprintln!("replica scaling retry {attempts}: {speedup:.2}× flips/s");
                    }
                    None => break,
                }
            }
            if speedup < qsmt::bench::MIN_REPLICA_SPEEDUP {
                return Err(format!(
                    "replica-scaling flips speedup {speedup:.2}× is below the {:.1}× gate \
                     after {attempts} attempts",
                    qsmt::bench::MIN_REPLICA_SPEEDUP
                ));
            }
        }
    } else if opts.check_replicas {
        return Err("bench document lacks replica_scaling.flips_speedup".into());
    }
    eprintln!("bench report written to {path}");
    Ok(())
}

/// `qsmt history`: per-stage latency percentiles over a run-history
/// store (the JSONL file `qsmt serve --run-store` appends to), with
/// regression verdicts. Returns whether any stage regressed — mapped to
/// the process exit code so a drifted deployment fails its health check.
fn run_history(path: &str, opts: &Options) -> Result<bool, String> {
    let store = qsmt::trace::RunStore::new(path, qsmt::trace::store::DEFAULT_MAX_LINES);
    let runs = store
        .load()
        .map_err(|e| format!("cannot read run store {path}: {e}"))?;
    if runs.is_empty() {
        println!("run store {path}: no runs recorded");
        return Ok(false);
    }
    let report = qsmt::trace::analyze(
        &runs,
        &qsmt::trace::HistoryOptions {
            recent: opts.recent,
            baseline: opts.baseline,
            threshold: opts.threshold,
        },
    );
    println!(
        "run store {path}: {} run(s), {} stage(s)",
        report.runs,
        report.stages.len()
    );
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12}",
        "stage", "runs", "p50_us", "p90_us", "p99_us"
    );
    for s in &report.stages {
        println!(
            "{:<16} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            s.label, s.runs, s.p50, s.p90, s.p99
        );
    }
    for r in &report.regressions {
        println!(
            "REGRESSION {}: p50 {:.1} us -> {:.1} us ({:+.1}%, threshold {:.0}%, \
             newest {} run(s) vs {} baseline run(s))",
            r.label,
            r.baseline_p50,
            r.recent_p50,
            r.drift * 100.0,
            opts.threshold * 100.0,
            opts.recent,
            opts.baseline,
        );
    }
    if report.regressions.is_empty() {
        println!("no stage regressions");
    }
    Ok(report.has_regressions())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "solve" || cmd == "dump" || cmd == "lint" => {
            let Some((path, flags)) = rest.split_first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            match (
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
                parse_flags(flags),
            ) {
                (Ok(source), Ok(opts)) => match cmd.as_str() {
                    "solve" => run_solve(&source, path, &opts),
                    "lint" => match run_lint(&source, path, &opts) {
                        // Diagnostics are already printed; error-level
                        // findings gate the exit code.
                        Ok(false) => Ok(()),
                        Ok(true) => return ExitCode::FAILURE,
                        Err(e) => Err(e),
                    },
                    _ => run_dump(&source, &opts),
                },
                (Err(e), _) | (_, Err(e)) => Err(e),
            }
        }
        Some((cmd, rest)) if cmd == "demo" => {
            parse_flags(rest).and_then(|opts| run_solve(DEMO, "<demo>", &opts))
        }
        Some((cmd, rest)) if cmd == "bench" => parse_flags(rest).and_then(|opts| run_bench(&opts)),
        Some((cmd, rest)) if cmd == "serve" => parse_flags(rest).and_then(|opts| {
            let addr = opts
                .metrics_addr
                .as_deref()
                .ok_or_else(|| "serve requires --metrics-addr <host:port>".to_string())?;
            qsmt::serve::serve(&qsmt::serve::ServeConfig {
                addr: addr.to_string(),
                seed: opts.seed,
                workers: opts.workers,
                queue_depth: opts.queue_depth,
                job_timeout: std::time::Duration::from_millis(opts.job_timeout_ms),
                max_requests: opts.max_requests,
                cache_entries: opts.cache_entries,
                run_store: opts.run_store.clone(),
                portfolio: opts.portfolio,
            })
        }),
        Some((cmd, rest)) if cmd == "submit" => {
            let Some((addr, rest)) = rest.split_first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            let Some((path, flags)) = rest.split_first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            match (
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
                parse_flags(flags),
            ) {
                (Ok(source), Ok(opts)) => {
                    let submit_opts = qsmt::serve::SubmitOptions {
                        seed: opts.seed_set.then_some(opts.seed),
                        reads: opts.reads_set.then_some(opts.reads as u64),
                        timeout_ms: opts.job_timeout_set.then_some(opts.job_timeout_ms),
                        portfolio: opts.portfolio.then_some(true),
                    };
                    qsmt::serve::submit(addr, &source, &submit_opts).and_then(|doc| {
                        println!("{}", doc.pretty());
                        // `--trace <out.json>`: fetch the finished job's
                        // spans as Chrome trace-event JSON (Perfetto).
                        if let Some(out) = &opts.trace_out {
                            let id = doc
                                .get("id")
                                .and_then(Json::as_str)
                                .ok_or_else(|| "status document lacks a job id".to_string())?;
                            let body = qsmt::serve::fetch(addr, &format!("/jobs/{id}/trace"))?;
                            std::fs::write(out, &body)
                                .map_err(|e| format!("cannot write trace to {out}: {e}"))?;
                            eprintln!("trace written to {out}");
                        }
                        Ok(())
                    })
                }
                (Err(e), _) | (_, Err(e)) => Err(e),
            }
        }
        Some((cmd, rest)) if cmd == "watch" => {
            let Some((addr, flags)) = rest.split_first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            parse_flags(flags).and_then(|opts| {
                let path = if opts.format == "json" {
                    "/flight"
                } else {
                    "/metrics"
                };
                let body = qsmt::serve::fetch(addr, path)?;
                print!("{body}");
                // Flight-recorder wrap check: when the bounded event
                // ring has evicted history, say so — otherwise a
                // watcher reads a seemingly complete event log.
                let flight = if path == "/flight" {
                    body
                } else {
                    qsmt::serve::fetch(addr, "/flight")?
                };
                let dropped = qsmt::telemetry::parse(&flight)
                    .ok()
                    .and_then(|doc| doc.get("dropped_total").and_then(Json::as_u64));
                if let Some(dropped) = dropped.filter(|&d| d > 0) {
                    eprintln!(
                        "warning: flight recorder dropped {dropped} event(s) \
                         (ring wrapped; oldest history lost)"
                    );
                }
                Ok(())
            })
        }
        Some((cmd, rest)) if cmd == "history" => {
            let Some((path, flags)) = rest.split_first() else {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            };
            match parse_flags(flags).and_then(|opts| run_history(path, &opts)) {
                // Stats are already printed; regressions gate the exit
                // code, mirroring `qsmt lint`.
                Ok(false) => Ok(()),
                Ok(true) => return ExitCode::FAILURE,
                Err(e) => Err(e),
            }
        }
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
