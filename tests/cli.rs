//! Integration tests for the `qsmt` CLI binary: the interface a
//! downstream user scripts against.

use std::process::Command;

fn qsmt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsmt"))
}

fn corpus(name: &str) -> String {
    format!("{}/benchmarks/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn solve_deterministic_corpus_file() {
    let out = qsmt()
        .args(["solve", &corpus("table1_row1_reverse_replace.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("sat"), "got: {stdout}");
    assert!(stdout.contains("\"ollah\""));
}

#[test]
fn solve_with_alternate_samplers() {
    for sampler in ["sqa", "pt", "tabu", "descent", "population"] {
        let out = qsmt()
            .args([
                "solve",
                &corpus("table1_row1_reverse_replace.smt2"),
                "--sampler",
                sampler,
                "--reads",
                "16",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "sampler {sampler} failed");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            stdout.contains("\"ollah\""),
            "sampler {sampler} wrong answer: {stdout}"
        );
    }
}

#[test]
fn exact_sampler_solves_small_goals_and_rejects_large_ones_gracefully() {
    // 7 indicator variables: well inside the exact enumerator's limit.
    let out = qsmt()
        .args(["solve", &corpus("indexof_query.smt2"), "--sampler", "exact"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("6"), "indexof answer: {stdout}");

    // 35 string bits: beyond the limit — a clean error, not a crash.
    let out = qsmt()
        .args([
            "solve",
            &corpus("table1_row1_reverse_replace.smt2"),
            "--sampler",
            "exact",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("cannot solve"), "stderr: {stderr}");
}

#[test]
fn unsat_corpus_file_reports_unsat() {
    let out = qsmt()
        .args(["solve", &corpus("unsat_regex_length.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout.trim(), "unsat");
}

#[test]
fn dump_emits_qbsolv_format_that_round_trips() {
    let out = qsmt()
        .args(["dump", &corpus("table1_row2_palindrome.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("p qubo 0 42"), "header missing: {stdout}");
    let model = qsmt::qubo::from_qbsolv(&stdout).expect("dump output parses back");
    assert_eq!(model.num_vars(), 42);
    assert!(model.num_interactions() > 0, "palindrome has couplings");
}

#[test]
fn demo_solves_all_rows() {
    let out = qsmt()
        .args(["demo", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("sat"));
    assert!(stdout.contains("row1"));
    assert!(stdout.contains("\"hexxo worxd\""));
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let out = qsmt().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("USAGE"));

    let out = qsmt()
        .args(["solve", "/nonexistent/file.smt2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = qsmt()
        .args(["demo", "--sampler", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown sampler"));
}
