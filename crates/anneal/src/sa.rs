//! Single-flip Metropolis simulated annealing with parallel reads.

use crate::probes::{aggregate_betas, Decimator, ProbeConfig, SamplerDynamics, StridedSampler};
use crate::{
    read_seed, AcceptCounters, AcceptanceTable, BetaSchedule, SampleSet, Sampler, SamplerRunStats,
};
use qsmt_qubo::{
    CompiledQubo, FlipKernel, KernelWatermark, MultiReplicaKernel, QuboModel, StopFlag, Var, LANES,
};
use qsmt_telemetry::dynamics::BetaAcceptance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Sweeps for a [`SimulatedAnnealer::reverse_anneal_from`] refinement
/// pass: a quarter of the cold default (384), starting from a known-good
/// state instead of a random one.
pub const WARM_START_SWEEPS: usize = 96;
/// Hot-end inverse temperature of the reverse-annealing schedule —
/// moderately hot, so the seeded state can adjust without melting.
pub const WARM_START_BETA_MIN: f64 = 2.0;
/// Cold-end inverse temperature of the reverse-annealing schedule.
pub const WARM_START_BETA_MAX: f64 = 12.0;

/// What one bit-sliced read block yields: the block's `(state, energy)`
/// pairs in read order, plus its accepted-flip count.
type BlockResult = (Vec<(Vec<u8>, f64)>, u64);

/// The simulated annealing sampler — the direct analog of the D-Wave
/// simulated annealer the paper ran its experiments on.
///
/// Each *read* is an independent anneal: start from a uniform random state,
/// then for each β in the schedule perform one full sweep over the variables
/// proposing single-bit flips accepted with the Metropolis criterion
/// `ΔE ≤ 0 ∨ u < exp(−β·ΔE)`. The hot path is O(1) per proposal: a
/// [`FlipKernel`] keeps every variable's local field current, so a proposal
/// reads one cached value and the CSR neighbor lists are only walked when a
/// flip is *accepted*; per-β [`AcceptanceTable`]s decide most uphill moves
/// without an `exp` (and the extreme ones without an RNG draw).
///
/// Reads run in parallel with rayon; results are deterministic for a fixed
/// seed regardless of thread count, because each read derives its own RNG
/// stream by hashing `(seed, read_index)` (see [`read_seed`]).
///
/// ```
/// use qsmt_anneal::{Sampler, SimulatedAnnealer};
/// use qsmt_qubo::QuboModel;
///
/// // min  -x0 + x1 - x0·x1  →  ground state [1, 0]
/// let mut m = QuboModel::new(2);
/// m.add_linear(0, -1.0);
/// m.add_linear(1, 1.0);
/// m.add_quadratic(0, 1, -0.5);
///
/// let sa = SimulatedAnnealer::new().with_seed(7).with_num_reads(16);
/// let (set, stats) = sa.sample_stats(&m);
/// assert_eq!(set.best().unwrap().state, vec![1, 0]);
/// assert!(stats.acceptance_rate().unwrap() > 0.0);
/// // `sample_stats` is a pure side observation of `sample`:
/// assert_eq!(set, sa.sample(&m));
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedAnnealer {
    num_reads: usize,
    sweeps: usize,
    schedule: Option<BetaSchedule>,
    seed: u64,
    parallel: bool,
    initial_state: Option<Vec<u8>>,
    stop: Option<StopFlag>,
}

impl Default for SimulatedAnnealer {
    fn default() -> Self {
        Self {
            num_reads: 32,
            sweeps: 256,
            schedule: None,
            seed: 0,
            parallel: true,
            initial_state: None,
            stop: None,
        }
    }
}

impl SimulatedAnnealer {
    /// Creates an annealer with defaults: 32 reads, 256 sweeps, auto
    /// geometric schedule, seed 0, parallel reads.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of independent reads (restarts).
    pub fn with_num_reads(mut self, n: usize) -> Self {
        self.num_reads = n;
        self
    }

    /// Sets the number of sweeps per read (only used with the auto
    /// schedule; an explicit schedule carries its own sweep count).
    pub fn with_sweeps(mut self, s: usize) -> Self {
        self.sweeps = s;
        self
    }

    /// Uses an explicit β schedule instead of the auto-derived one.
    pub fn with_schedule(mut self, schedule: BetaSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the RNG seed. Identical seeds give identical sample sets.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Forces sequential reads (for benching thread-scaling and for
    /// environments where nested rayon pools are undesirable).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// **Reverse annealing**: every read starts from the given state
    /// instead of a uniformly random one, refining a known-good candidate
    /// — the software analog of D-Wave's reverse-anneal feature. Pair with
    /// a schedule whose hot end is only moderately hot so the walk stays
    /// near the seed basin.
    ///
    /// # Panics
    /// Panics at sample time if the state length does not match the model.
    pub fn with_initial_state(mut self, state: Vec<u8>) -> Self {
        assert!(
            state.iter().all(|&b| b <= 1),
            "initial state must be binary"
        );
        self.initial_state = Some(state);
        self
    }

    /// Reverse-annealing preset: keep this sampler's reads, seed, and
    /// stop flag, but start every read from `state` under a short,
    /// moderately hot schedule ([`WARM_START_SWEEPS`] sweeps, geometric
    /// β [`WARM_START_BETA_MIN`] → [`WARM_START_BETA_MAX`]). The hot
    /// entry lets the seed escape shallow local minima without erasing
    /// the structure it carries; the quarter-length schedule suffices
    /// because the walk begins near a basin instead of at a random
    /// corner of the hypercube. This is the solve cache's warm path
    /// (`docs/CACHING.md`), reachable polymorphically through
    /// [`Sampler::warm_started`].
    ///
    /// # Panics
    /// Panics at sample time if the state length does not match the model.
    pub fn reverse_anneal_from(self, state: Vec<u8>) -> Self {
        self.with_initial_state(state)
            .with_schedule(BetaSchedule::Geometric {
                beta_min: WARM_START_BETA_MIN,
                beta_max: WARM_START_BETA_MAX,
                sweeps: WARM_START_SWEEPS,
            })
    }

    /// Attaches a cooperative [`StopFlag`]: every read polls it at sweep
    /// granularity and winds down early once it trips, returning the best
    /// states reached so far. An un-tripped flag costs one relaxed atomic
    /// load per sweep and never touches the RNG streams, so results stay
    /// bit-identical to an un-flagged run until the flag fires. This is
    /// the deadline hook the solve service uses to cancel jobs mid-anneal.
    pub fn with_stop(mut self, stop: StopFlag) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Number of reads configured.
    pub fn num_reads(&self) -> usize {
        self.num_reads
    }

    /// Replica lanes the bit-sliced kernel advances per sweep: a full
    /// word ([`LANES`]) once there are that many reads, fewer for small
    /// batches, `None` when there are no reads at all. Surfaced through
    /// [`SamplerRunStats::replicas`].
    fn replicas_per_block(&self) -> Option<u64> {
        (self.num_reads > 0).then(|| self.num_reads.min(LANES) as u64)
    }

    /// One independent anneal on the scalar [`FlipKernel`] — the
    /// reference twin of the bit-sliced block path. Production sampling
    /// goes through [`SimulatedAnnealer::read_block`]; this stays as the
    /// ground truth the bit-identity tests compare lanes against (and is
    /// the shape [`SimulatedAnnealer::one_read_probed`] mirrors). The
    /// returned `u64` counts accepted flips — a pure side observation
    /// that never touches the RNG stream, so results are bit-identical
    /// whether or not the count is used.
    #[cfg(test)]
    fn one_read(
        compiled: &CompiledQubo,
        tables: &[AcceptanceTable],
        seed: u64,
        initial: Option<&[u8]>,
        stop: Option<&StopFlag>,
    ) -> (Vec<u8>, f64, u64) {
        let n = compiled.num_vars();
        let mut rng = SmallRng::seed_from_u64(seed);
        let state: Vec<u8> = match initial {
            Some(init) => {
                assert_eq!(init.len(), n, "initial state length mismatch");
                init.to_vec()
            }
            None => (0..n).map(|_| rng.gen_range(0..=1u8)).collect(),
        };
        let mut kernel = FlipKernel::new(compiled, state);
        let mut accepted = 0u64;
        for table in tables {
            // Cooperative cancellation: a tripped deadline ends the anneal
            // at the next sweep boundary, keeping the state reached so far.
            if stop.is_some_and(StopFlag::is_stopped) {
                break;
            }
            for i in 0..n {
                if table.accept(kernel.delta(i as Var), &mut rng) {
                    kernel.flip(compiled, i as Var);
                    accepted += 1;
                }
            }
        }
        debug_assert!(
            (kernel.energy() - compiled.energy(kernel.state())).abs()
                < FlipKernel::drift_tolerance(compiled),
            "incremental energy drifted from recomputed energy"
        );
        let energy = kernel.energy();
        (kernel.into_state(), energy, accepted)
    }

    /// [`SimulatedAnnealer::one_read`] with trajectory probes: identical
    /// proposal/acceptance/RNG behavior (pinned by tests), plus per-sweep
    /// observation of the best energy, per-β acceptance, sweep latency,
    /// and acceptance-table fast-path counters.
    fn one_read_probed(
        compiled: &CompiledQubo,
        tables: &[AcceptanceTable],
        seed: u64,
        initial: Option<&[u8]>,
        stop: Option<&StopFlag>,
        config: &ProbeConfig,
        dynamics: &mut SamplerDynamics,
    ) -> (Vec<u8>, f64, u64) {
        let n = compiled.num_vars();
        let mut rng = SmallRng::seed_from_u64(seed);
        let state: Vec<u8> = match initial {
            Some(init) => {
                assert_eq!(init.len(), n, "initial state length mismatch");
                init.to_vec()
            }
            None => (0..n).map(|_| rng.gen_range(0..=1u8)).collect(),
        };
        let mut kernel = FlipKernel::new(compiled, state);
        let mut accepted = 0u64;
        let mut counters = AcceptCounters::default();
        let mut watermark = KernelWatermark::new(kernel.energy());
        let mut trace = Decimator::new(config.max_trace_points);
        let mut per_beta: Vec<BetaAcceptance> = Vec::with_capacity(tables.len());
        let mut latency = StridedSampler::new(tables.len() as u64);
        let mut improvement = StridedSampler::new(tables.len() as u64);
        trace.push(0, watermark.best());
        for (sweep, table) in tables.iter().enumerate() {
            if stop.is_some_and(StopFlag::is_stopped) {
                break;
            }
            let sweep_started = latency.will_record().then(Instant::now);
            let best_before = watermark.best();
            let mut accepted_this = 0u64;
            for i in 0..n {
                if table.accept_counted(kernel.delta(i as Var), &mut rng, &mut counters) {
                    kernel.flip(compiled, i as Var);
                    watermark.observe(kernel.energy());
                    accepted_this += 1;
                }
            }
            accepted += accepted_this;
            per_beta.push(BetaAcceptance {
                beta: table.beta(),
                proposals: n as u64,
                accepted: accepted_this,
            });
            match sweep_started {
                Some(t0) => {
                    latency.push(t0.elapsed().as_nanos() as f64 / n.max(1) as f64);
                }
                None => latency.skip(),
            }
            improvement.push((best_before - watermark.best()).max(0.0));
            trace.push(sweep as u64 + 1, watermark.best());
        }
        debug_assert!(
            (kernel.energy() - compiled.energy(kernel.state())).abs()
                < FlipKernel::drift_tolerance(compiled),
            "incremental energy drifted from recomputed energy"
        );
        dynamics.energy_trace = trace.finish();
        dynamics.beta_acceptance = aggregate_betas(&per_beta, config.max_trace_points);
        dynamics.proposal_latency_ns = latency.into_samples();
        dynamics.sweep_improvement = improvement.into_samples();
        dynamics.accept_paths = Some(counters);
        let energy = kernel.energy();
        (kernel.into_state(), energy, accepted)
    }

    /// One block of up to [`LANES`] reads advanced in lockstep by the
    /// bit-sliced [`MultiReplicaKernel`]: the block's reads are the
    /// global read indices `first_read..first_read + lanes`, and lane
    /// `r` of the block is bit-identical to a scalar
    /// [`SimulatedAnnealer::one_read`] of read `first_read + r` — each
    /// lane keeps its own `read_seed`-derived RNG stream, draws its
    /// initial state from that stream, and every float op happens in
    /// scalar order. Returns the block's `(state, energy)` pairs in read
    /// order plus its accepted-flip count.
    fn read_block(
        compiled: &CompiledQubo,
        tables: &[AcceptanceTable],
        seed: u64,
        first_read: usize,
        lanes: usize,
        initial: Option<&[u8]>,
        stop: Option<&StopFlag>,
    ) -> (Vec<(Vec<u8>, f64)>, u64) {
        let n = compiled.num_vars();
        let mut rngs: Vec<SmallRng> = (first_read..first_read + lanes)
            .map(|r| SmallRng::seed_from_u64(read_seed(seed, r as u64)))
            .collect();
        let states: Vec<Vec<u8>> = rngs
            .iter_mut()
            .map(|rng| match initial {
                Some(init) => {
                    assert_eq!(init.len(), n, "initial state length mismatch");
                    init.to_vec()
                }
                None => (0..n).map(|_| rng.gen_range(0..=1u8)).collect(),
            })
            .collect();
        let mut kernel = MultiReplicaKernel::new(compiled, &states);
        let mut accepted = 0u64;
        for table in tables {
            // Cooperative cancellation at sweep granularity, exactly like
            // the scalar read: the whole block winds down together.
            if stop.is_some_and(StopFlag::is_stopped) {
                break;
            }
            accepted += crate::multi::sweep_word(&mut kernel, compiled, table, &mut rngs);
        }
        #[cfg(debug_assertions)]
        for r in 0..kernel.lanes() {
            debug_assert!(
                (kernel.energy(r) - compiled.energy(&kernel.state(r))).abs()
                    < FlipKernel::drift_tolerance(compiled),
                "incremental energy drifted from recomputed energy (lane {r})"
            );
        }
        (kernel.into_reads(), accepted)
    }

    /// Partitions `reads` (a range of global read indices) into blocks of
    /// at most [`LANES`] consecutive reads.
    fn blocks(reads: std::ops::Range<usize>) -> Vec<(usize, usize)> {
        reads
            .clone()
            .step_by(LANES)
            .map(|start| (start, LANES.min(reads.end - start)))
            .collect()
    }

    /// Runs all reads, returning raw `(state, energy)` pairs plus the
    /// total accepted-flip count and the realized sweep count. Reads run
    /// in blocks of up to [`LANES`] on the bit-sliced kernel; the
    /// partition never changes results because every read keeps its own
    /// RNG stream.
    fn run_reads(&self, model: &QuboModel) -> (Vec<(Vec<u8>, f64)>, u64, u64) {
        let compiled = CompiledQubo::compile(model);
        let betas = match &self.schedule {
            Some(s) => s.realize(),
            None => BetaSchedule::auto(&compiled, self.sweeps).realize(),
        };
        // One acceptance table per β, built once and shared read-only by
        // every block.
        let tables = AcceptanceTable::for_schedule(&betas);
        let initial = self.initial_state.as_deref();
        let stop = self.stop.as_ref();
        let blocks = Self::blocks(0..self.num_reads);
        let results: Vec<BlockResult> = if self.parallel {
            blocks
                .into_par_iter()
                .map(|(start, lanes)| {
                    Self::read_block(&compiled, &tables, self.seed, start, lanes, initial, stop)
                })
                .collect()
        } else {
            blocks
                .into_iter()
                .map(|(start, lanes)| {
                    Self::read_block(&compiled, &tables, self.seed, start, lanes, initial, stop)
                })
                .collect()
        };
        let accepted = results.iter().map(|(_, a)| a).sum();
        let reads = results.into_iter().flat_map(|(reads, _)| reads).collect();
        (reads, accepted, betas.len() as u64)
    }
}

impl Sampler for SimulatedAnnealer {
    fn sample(&self, model: &QuboModel) -> SampleSet {
        let (reads, _, _) = self.run_reads(model);
        SampleSet::from_reads(reads)
    }

    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn supports_initial_state(&self) -> bool {
        true
    }

    fn warm_started(&self, state: Vec<u8>) -> Option<Arc<dyn Sampler>> {
        Some(Arc::new(self.clone().reverse_anneal_from(state)))
    }

    fn sample_stats(&self, model: &QuboModel) -> (SampleSet, SamplerRunStats) {
        let started = Instant::now();
        let (reads, accepted, sweeps) = self.run_reads(model);
        let elapsed_us = started.elapsed().as_micros() as u64;
        let proposals = sweeps * model.num_vars() as u64 * self.num_reads as u64;
        let stats = SamplerRunStats {
            sweeps: Some(sweeps),
            proposals: Some(proposals),
            accepted: Some(accepted),
            elapsed_us: Some(elapsed_us),
            replicas: self.replicas_per_block(),
        };
        (SampleSet::from_reads(reads), stats)
    }

    fn sample_dynamics(
        &self,
        model: &QuboModel,
        config: &ProbeConfig,
    ) -> (SampleSet, SamplerRunStats, SamplerDynamics) {
        if !config.enabled {
            let (set, stats) = self.sample_stats(model);
            return (set, stats, SamplerDynamics::default());
        }
        let started = Instant::now();
        let compiled = CompiledQubo::compile(model);
        let betas = match &self.schedule {
            Some(s) => s.realize(),
            None => BetaSchedule::auto(&compiled, self.sweeps).realize(),
        };
        let tables = AcceptanceTable::for_schedule(&betas);
        let initial = self.initial_state.as_deref();
        let stop = self.stop.as_ref();
        let mut dynamics = SamplerDynamics::default();
        // Per-read wall-clock intervals relative to `started`, spliced
        // into job traces as per-read spans. Reads sharing a bit-sliced
        // block share the block's interval; the probe read is timed on
        // its own. Only this enabled path pays for the clock reads.
        let mut read_spans = vec![(0u64, 0u64); self.num_reads];
        // Read 0 is the probe read (run sequentially, observed per sweep);
        // the remaining reads run exactly as in the plain path. Per-read
        // RNG streams are independent, so ordering does not matter.
        let mut results: Vec<(Vec<u8>, f64, u64)> = Vec::with_capacity(self.num_reads);
        if self.num_reads > 0 {
            let probe_start_us = started.elapsed().as_micros() as u64;
            results.push(Self::one_read_probed(
                &compiled,
                &tables,
                read_seed(self.seed, 0),
                initial,
                stop,
                config,
                &mut dynamics,
            ));
            let probe_end_us = started.elapsed().as_micros() as u64;
            read_spans[0] = (probe_start_us, probe_end_us.saturating_sub(probe_start_us));
        }
        // Reads 1.. run on the bit-sliced block path exactly as in the
        // plain run; lane streams are independent of the probe read's.
        // `started` is a Copy Instant, so per-block timestamps from
        // parallel workers land on the same axis.
        let timed_block = |(start, lanes): (usize, usize)| {
            let t0 = started.elapsed().as_micros() as u64;
            let result =
                Self::read_block(&compiled, &tables, self.seed, start, lanes, initial, stop);
            let t1 = started.elapsed().as_micros() as u64;
            ((start, lanes), result, (t0, t1.saturating_sub(t0)))
        };
        type TimedBlock = ((usize, usize), BlockResult, (u64, u64));
        let blocks = Self::blocks(1..self.num_reads.max(1));
        let rest: Vec<TimedBlock> = if self.parallel {
            blocks.into_par_iter().map(timed_block).collect()
        } else {
            blocks.into_iter().map(timed_block).collect()
        };
        let mut accepted: u64 = results.iter().map(|(_, _, a)| a).sum();
        let mut reads: Vec<(Vec<u8>, f64)> = results.into_iter().map(|(s, e, _)| (s, e)).collect();
        for ((start, lanes), (block_reads, block_accepted), interval) in rest {
            accepted += block_accepted;
            reads.extend(block_reads);
            for span in &mut read_spans[start..start + lanes] {
                *span = interval;
            }
        }
        dynamics.read_spans = read_spans;
        let sweeps = betas.len() as u64;
        let elapsed_us = started.elapsed().as_micros() as u64;
        let proposals = sweeps * model.num_vars() as u64 * self.num_reads as u64;
        let stats = SamplerRunStats {
            sweeps: Some(sweeps),
            proposals: Some(proposals),
            accepted: Some(accepted),
            elapsed_us: Some(elapsed_us),
            replicas: self.replicas_per_block(),
        };
        (SampleSet::from_reads(reads), stats, dynamics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frustrated 6-variable model with a unique known ground state.
    fn gadget() -> (QuboModel, Vec<u8>) {
        let mut m = QuboModel::new(6);
        // chain of equalities x0=x1=...=x5 plus a field pinning x0=1
        m.add_linear(0, -2.0);
        for i in 0..5u32 {
            // bits_equal penalty expanded
            m.add_linear(i, 1.0);
            m.add_linear(i + 1, 1.0);
            m.add_quadratic(i, i + 1, -2.0);
        }
        (m, vec![1; 6])
    }

    #[test]
    fn finds_unique_ground_state() {
        let (m, gs) = gadget();
        let sa = SimulatedAnnealer::new().with_seed(42).with_num_reads(16);
        let set = sa.sample(&m);
        assert_eq!(set.best().unwrap().state, gs);
        let (exact_e, _) = m.brute_force_ground_states();
        assert!((set.lowest_energy().unwrap() - exact_e).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (m, _) = gadget();
        let a = SimulatedAnnealer::new().with_seed(9).sample(&m);
        let b = SimulatedAnnealer::new().with_seed(9).sample(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_matches_parallel() {
        let (m, _) = gadget();
        let par = SimulatedAnnealer::new().with_seed(3).sample(&m);
        let seq = SimulatedAnnealer::new()
            .with_seed(3)
            .with_parallel(false)
            .sample(&m);
        assert_eq!(par, seq);
    }

    #[test]
    fn read_count_is_respected() {
        let (m, _) = gadget();
        let set = SimulatedAnnealer::new()
            .with_num_reads(10)
            .with_seed(1)
            .sample(&m);
        assert_eq!(set.total_reads(), 10);
    }

    #[test]
    fn zero_model_samples_arbitrary_states_at_zero_energy() {
        let m = QuboModel::new(8);
        let set = SimulatedAnnealer::new().with_seed(5).sample(&m);
        assert_eq!(set.lowest_energy().unwrap(), 0.0);
    }

    #[test]
    fn explicit_schedule_is_used() {
        let (m, gs) = gadget();
        let sa = SimulatedAnnealer::new()
            .with_seed(2)
            .with_num_reads(16)
            .with_schedule(BetaSchedule::Linear {
                beta_min: 0.05,
                beta_max: 12.0,
                sweeps: 300,
            });
        assert_eq!(sa.sample(&m).best().unwrap().state, gs);
    }

    #[test]
    fn reverse_annealing_refines_a_seed_state() {
        let (m, gs) = gadget();
        // Start one bit away from the ground state with a mild schedule:
        // every read must fall into the seed's basin.
        let mut near = gs.clone();
        near[5] ^= 1;
        let sa = SimulatedAnnealer::new()
            .with_seed(3)
            .with_num_reads(8)
            .with_initial_state(near)
            .with_schedule(BetaSchedule::Geometric {
                beta_min: 2.0,
                beta_max: 12.0,
                sweeps: 64,
            });
        let set = sa.sample(&m);
        assert_eq!(set.best().unwrap().state, gs);
        assert!(set.success_fraction(1e-9) > 0.9);
    }

    #[test]
    #[should_panic(expected = "initial state length mismatch")]
    fn reverse_annealing_rejects_wrong_length() {
        let (m, _) = gadget();
        SimulatedAnnealer::new()
            .with_initial_state(vec![0, 1])
            .sample(&m);
    }

    #[test]
    fn sample_stats_matches_sample_and_counts_moves() {
        let (m, _) = gadget();
        let sa = SimulatedAnnealer::new().with_seed(7).with_num_reads(4);
        let (set, stats) = sa.sample_stats(&m);
        assert_eq!(set, sa.sample(&m), "observability must not change results");
        let sweeps = stats.sweeps.unwrap();
        assert!(sweeps > 0);
        let proposals = stats.proposals.unwrap();
        assert_eq!(proposals, sweeps * 6 * 4, "6 vars × 4 reads per sweep");
        let accepted = stats.accepted.unwrap();
        assert!(accepted <= proposals);
        assert!(accepted > 0, "a hot schedule accepts at least some moves");
        let rate = stats.acceptance_rate().unwrap();
        assert!(rate > 0.0 && rate <= 1.0);
    }

    #[test]
    fn probed_run_returns_identical_samples() {
        let (m, _) = gadget();
        let sa = SimulatedAnnealer::new().with_seed(13).with_num_reads(8);
        let plain = sa.sample(&m);
        let (probed, stats, dynamics) = sa.sample_dynamics(&m, &ProbeConfig::default());
        assert_eq!(probed, plain, "probes must not change results");
        assert_eq!(stats.accepted, sa.sample_stats(&m).1.accepted);
        // The probe read produced a trace ending at the realized sweep
        // count, a bounded β-acceptance table, and fast-path counters
        // covering every probe-read proposal.
        let sweeps = stats.sweeps.unwrap();
        assert_eq!(dynamics.energy_trace.last().unwrap().sweep, sweeps);
        assert!(!dynamics.beta_acceptance.is_empty());
        assert!(dynamics.beta_acceptance.len() <= 256);
        assert_eq!(
            dynamics
                .beta_acceptance
                .iter()
                .map(|b| b.proposals)
                .sum::<u64>(),
            sweeps * 6
        );
        assert_eq!(dynamics.accept_paths.unwrap().total(), sweeps * 6);
        assert_eq!(dynamics.sweep_improvement.len() as u64, sweeps);
        assert!(!dynamics.proposal_latency_ns.is_empty());
        // Best-energy trace is non-increasing.
        assert!(dynamics
            .energy_trace
            .windows(2)
            .all(|w| w[1].best_energy <= w[0].best_energy));
        // Sampler-specific probes of other samplers stay empty.
        assert!(dynamics.swap_acceptance.is_empty());
        assert!(dynamics.ess_trace.is_empty());
        assert!(dynamics.aspiration_hits.is_none());
    }

    #[test]
    fn disabled_probes_return_empty_dynamics() {
        let (m, _) = gadget();
        let sa = SimulatedAnnealer::new().with_seed(13).with_num_reads(4);
        let (set, _, dynamics) = sa.sample_dynamics(&m, &ProbeConfig::disabled());
        assert_eq!(set, sa.sample(&m));
        assert!(dynamics.is_empty());
    }

    #[test]
    fn probed_runs_time_every_read() {
        let (m, _) = gadget();
        // 3 reads: the probe read plus one block of 2.
        let sa = SimulatedAnnealer::new().with_seed(13).with_num_reads(3);
        let (_, _, dynamics) = sa.sample_dynamics(&m, &ProbeConfig::default());
        assert_eq!(dynamics.read_spans.len(), 3);
        // Reads in the same bit-sliced block share the block interval.
        assert_eq!(dynamics.read_spans[1], dynamics.read_spans[2]);
        // The disabled path records nothing (pinned by is_empty above).
        let (_, _, off) = sa.sample_dynamics(&m, &ProbeConfig::disabled());
        assert!(off.read_spans.is_empty());
    }

    #[test]
    fn big_m_penalty_coefficients_do_not_trip_drift_check() {
        // Big-M penalty encodings put 1e12-scale coefficients in the
        // model; the incremental-energy drift assert must scale its
        // tolerance with the flip magnitude instead of false-alarming
        // (this test runs under debug assertions in `cargo test`).
        let mut m = QuboModel::new(8);
        for i in 0..8u32 {
            m.add_linear(i, if i % 2 == 0 { 1e12 } else { -1e12 });
        }
        for i in 0..7u32 {
            m.add_quadratic(i, i + 1, 5e11);
        }
        let set = SimulatedAnnealer::new()
            .with_seed(11)
            .with_num_reads(8)
            .sample(&m);
        let (exact_e, _) = m.brute_force_ground_states();
        assert!((set.lowest_energy().unwrap() - exact_e).abs() < 1e-3 * exact_e.abs());
    }

    #[test]
    fn block_path_is_bit_identical_to_scalar_reads() {
        // The production block path must reproduce the scalar reference
        // read-for-read, bit-for-bit — states, energies, and accept
        // counts. 70 reads exercises a full 64-lane word plus a 6-lane
        // tail block.
        let (m, _) = gadget();
        let compiled = CompiledQubo::compile(&m);
        let betas = BetaSchedule::auto(&compiled, 48).realize();
        let tables = AcceptanceTable::for_schedule(&betas);
        for initial in [None, Some(vec![1u8, 0, 1, 0, 1, 0])] {
            let mut sa = SimulatedAnnealer::new()
                .with_seed(17)
                .with_num_reads(70)
                .with_sweeps(48);
            if let Some(init) = &initial {
                sa = sa.with_initial_state(init.clone());
            }
            let (reads, accepted, _) = sa.run_reads(&m);
            assert_eq!(reads.len(), 70);
            let mut scalar_accepted = 0u64;
            for (r, (state, energy)) in reads.iter().enumerate() {
                let (s_state, s_energy, s_acc) = SimulatedAnnealer::one_read(
                    &compiled,
                    &tables,
                    read_seed(17, r as u64),
                    initial.as_deref(),
                    None,
                );
                assert_eq!(*state, s_state, "read {r}");
                assert_eq!(*energy, s_energy, "read {r} energy must be bit-identical");
                scalar_accepted += s_acc;
            }
            assert_eq!(accepted, scalar_accepted);
        }
    }

    #[test]
    fn untripped_stop_flag_is_bit_identical() {
        let (m, _) = gadget();
        let plain = SimulatedAnnealer::new().with_seed(9).sample(&m);
        let flagged = SimulatedAnnealer::new()
            .with_seed(9)
            .with_stop(StopFlag::new())
            .sample(&m);
        assert_eq!(plain, flagged, "an un-tripped flag must not steer");
    }

    #[test]
    fn tripped_stop_flag_cancels_before_the_first_sweep() {
        let (m, _) = gadget();
        let stop = StopFlag::new();
        stop.stop();
        // Every read bails at the first sweep boundary: zero accepted
        // flips, and the returned states are the random initial states.
        let sa = SimulatedAnnealer::new()
            .with_seed(4)
            .with_num_reads(8)
            .with_sweeps(4096)
            .with_stop(stop);
        let (set, stats) = sa.sample_stats(&m);
        assert_eq!(set.total_reads(), 8, "cancelled reads still report");
        assert_eq!(stats.accepted, Some(0));
        let (probed, _, dynamics) = sa.sample_dynamics(&m, &ProbeConfig::default());
        assert_eq!(probed, set, "probed cancellation matches plain");
        assert!(dynamics.beta_acceptance.is_empty());
    }

    #[test]
    fn mid_run_stop_keeps_best_state_so_far() {
        let (m, _) = gadget();
        let stop = StopFlag::new();
        let sa = SimulatedAnnealer::new()
            .with_seed(6)
            .with_num_reads(2)
            .with_parallel(false)
            .with_sweeps(200_000)
            .with_stop(stop.clone());
        let trip = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            stop.stop();
        });
        let started = std::time::Instant::now();
        let set = sa.sample(&m);
        trip.join().unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "cancellation must cut the 200k-sweep budget short"
        );
        assert_eq!(set.total_reads(), 2);
        assert!(set.lowest_energy().unwrap().is_finite());
    }

    #[test]
    fn offset_is_included_in_reported_energy() {
        let mut m = QuboModel::new(1);
        m.add_linear(0, -1.0);
        m.add_offset(10.0);
        let set = SimulatedAnnealer::new().with_seed(0).sample(&m);
        assert!((set.lowest_energy().unwrap() - 9.0).abs() < 1e-9);
    }
}
