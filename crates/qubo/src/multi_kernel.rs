//! Bit-sliced multi-replica flip kernel: 64 independent replicas per
//! machine word.
//!
//! The scalar [`FlipKernel`](crate::FlipKernel) advances one replica at a
//! time: every proposal costs a load + multiply, and every accepted flip
//! walks the variable's CSR neighbor list alone. Annealing workloads run
//! *batches* of independent replicas (reads, tempering rungs, population
//! members) over the same compiled model, so the per-replica bookkeeping
//! can be amortized across the whole batch — the digital-annealer-style
//! parallel proposal evaluation of Oshiyama & Ohzeki (arXiv:2104.14096)
//! and the bit-parallel annealer encodings of Bian et al.
//! (arXiv:1811.02524).
//!
//! [`MultiReplicaKernel`] packs up to [`LANES`] replica states into one
//! `u64` per variable — bit `r` of `words[i]` is replica `r`'s value of
//! variable `i` — and keeps the per-replica local fields in one flat
//! structure-of-arrays block, `fields[i * LANES + r]`:
//!
//! ```text
//! words:   [ var 0: u64 ][ var 1: u64 ] …       bit r ↦ replica r
//! fields:  [ f(0,r=0) … f(0,r=63) | f(1,r=0) … f(1,r=63) | … ]
//! ```
//!
//! A proposal for variable `i` therefore evaluates ΔE for all replicas at
//! once from one contiguous 64-lane field block, the accept/reject
//! decisions come back as a single `u64` mask, and an accepted mask
//! touches the CSR neighbor list **once per word** instead of once per
//! accepted flip — the neighbor walk decodes each `(j, q)` pair one time
//! and fans the `±q` update out to every accepted lane's contiguous field
//! slot.
//!
//! Per-lane arithmetic is performed in exactly the order the scalar
//! kernel would (fields accumulate in CSR order, energies accumulate in
//! acceptance order), so lane `r` of a multi-replica run is **bit
//! identical** to a scalar [`FlipKernel`](crate::FlipKernel) run fed the
//! same decision stream — pinned by `tests/multi_kernel_proptests.rs`.
//! Acceptance itself stays the caller's job (the per-β tables live in
//! `qsmt-anneal`): the kernel exposes [`MultiReplicaKernel::deltas_into`]
//! and [`MultiReplicaKernel::apply_mask`], and the sampler crate supplies
//! the mask.

use crate::{CompiledQubo, Var};

/// Replicas per machine word: the bit width of the mask type.
pub const LANES: usize = 64;

/// Bit-sliced state, local fields, and energies for up to [`LANES`]
/// independent replicas of one compiled QUBO model.
///
/// ```
/// use qsmt_qubo::{CompiledQubo, MultiReplicaKernel, QuboModel};
///
/// let mut m = QuboModel::new(2);
/// m.add_linear(0, -1.0);
/// m.add_quadratic(0, 1, 2.0);
/// let c = CompiledQubo::compile(&m);
/// // Two replicas: one all-zeros, one with x0 = 1.
/// let mut k = MultiReplicaKernel::new(&c, &[vec![0, 0], vec![1, 0]]);
/// assert_eq!(k.delta(0, 0), -1.0); // replica 0 would gain by setting x0
/// assert_eq!(k.delta(0, 1), 1.0);  // replica 1 would lose by clearing it
/// k.apply_mask(&c, 0, 0b01);       // flip x0 in replica 0 only
/// assert_eq!(k.energy(0), -1.0);
/// assert_eq!(k.energy(1), -1.0);
/// assert_eq!(k.state(0), vec![1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiReplicaKernel {
    lanes: usize,
    /// Bit `r` of `words[i]` is replica `r`'s value of variable `i`.
    words: Vec<u64>,
    /// `fields[i * LANES + r]` is replica `r`'s local field of variable
    /// `i`; slots of unused lanes stay 0.0.
    fields: Vec<f64>,
    /// Incremental energy per replica, `energies[r]`.
    energies: Vec<f64>,
}

impl MultiReplicaKernel {
    /// Builds the bit-sliced caches for `states` (one per replica,
    /// `1..=LANES` of them); O(lanes · (n + m)).
    ///
    /// Field construction accumulates coefficients in the same (CSR)
    /// order as [`FlipKernel::new`](crate::FlipKernel::new), so the
    /// per-lane caches start bit-identical to their scalar twins.
    ///
    /// # Panics
    /// Panics when `states` is empty, holds more than [`LANES`] entries,
    /// or any state's length does not match the compiled model.
    pub fn new(compiled: &CompiledQubo, states: &[Vec<u8>]) -> Self {
        let lanes = states.len();
        assert!(
            (1..=LANES).contains(&lanes),
            "multi-replica kernel needs 1..=64 replica states, got {lanes}"
        );
        let n = compiled.num_vars();
        let mut words = vec![0u64; n];
        for (r, state) in states.iter().enumerate() {
            assert_eq!(
                state.len(),
                n,
                "replica {r} state length mismatch with compiled model"
            );
            crate::debug_check_state(state);
            for (i, &bit) in state.iter().enumerate() {
                words[i] |= u64::from(bit) << r;
            }
        }
        let mut fields = vec![0.0f64; n * LANES];
        for i in 0..n as Var {
            let base = i as usize * LANES;
            for (r, state) in states.iter().enumerate() {
                // Scalar-order accumulation: linear term first, then the
                // CSR neighbor list — identical float op order to
                // FlipKernel::new for every lane.
                let mut f = compiled.linear(i);
                for &(j, q) in compiled.neighbors(i) {
                    if state[j as usize] == 1 {
                        f += q;
                    }
                }
                fields[base + r] = f;
            }
        }
        let energies = states.iter().map(|s| compiled.energy(s)).collect();
        Self {
            lanes,
            words,
            fields,
            energies,
        }
    }

    /// Number of active replica lanes (1..=[`LANES`]).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.words.len()
    }

    /// Mask with one bit set per active lane (`lanes` low bits).
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        if self.lanes == LANES {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// The packed word of variable `i` (bit `r` = replica `r`'s value).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Replica `r`'s current incremental energy.
    #[inline]
    pub fn energy(&self, r: usize) -> f64 {
        self.energies[r]
    }

    /// Incremental energies of all active lanes, indexed by lane.
    #[inline]
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }

    /// Extracts replica `r`'s assignment as a dense byte state.
    pub fn state(&self, r: usize) -> Vec<u8> {
        assert!(r < self.lanes, "lane {r} out of range ({})", self.lanes);
        self.words.iter().map(|&w| ((w >> r) & 1) as u8).collect()
    }

    /// Consumes the kernel, returning every lane's `(state, energy)` pair
    /// in lane order.
    pub fn into_reads(self) -> Vec<(Vec<u8>, f64)> {
        (0..self.lanes)
            .map(|r| (self.state(r), self.energies[r]))
            .collect()
    }

    /// Hints the hardware prefetcher at the first few neighbor field
    /// blocks of variable `i`, so their L2→L1 transfer overlaps whatever
    /// the caller does between the acceptance decision and
    /// [`MultiReplicaKernel::apply_mask_with_deltas`] (typically the
    /// residual RNG draws). Pure hint — no observable effect on results.
    #[inline]
    pub fn prefetch_apply(&self, compiled: &CompiledQubo, i: Var) {
        for &(j, _) in compiled.neighbors(i).iter().take(4) {
            simd::prefetch_block(&self.fields, j as usize * LANES);
        }
    }

    /// Energy change from flipping variable `i` in replica `r`; O(1).
    /// Bit-identical to the scalar kernel's `delta`.
    #[inline]
    pub fn delta(&self, i: Var, r: usize) -> f64 {
        let bit = (self.words[i as usize] >> r) & 1;
        (1.0 - 2.0 * bit as f64) * self.fields[i as usize * LANES + r]
    }

    /// Writes the flip delta of variable `i` for every lane into `out`
    /// (unused lanes get 0.0 — their field slots are never touched).
    ///
    /// One contiguous 64-slot field block and a branch-free sign from the
    /// packed word, so the loop auto-vectorizes.
    #[inline]
    pub fn deltas_into(&self, i: usize, out: &mut [f64; LANES]) {
        let word = self.words[i];
        let base = i * LANES;
        let fields = &self.fields[base..base + LANES];
        for r in 0..LANES {
            let sign = 1.0 - 2.0 * ((word >> r) & 1) as f64;
            out[r] = sign * fields[r];
        }
    }

    /// Applies the flip of variable `i` in every lane whose bit is set in
    /// `mask`, updating the packed word, per-lane energies, and per-lane
    /// neighbor fields. The CSR neighbor list is traversed **once** for
    /// the whole word; each `(j, q)` pair fans out to the accepted lanes'
    /// contiguous field slots.
    ///
    /// Returns the number of flips applied (`mask.count_ones()`).
    ///
    /// # Panics
    /// Debug-panics when `mask` has bits outside the active lanes.
    pub fn apply_mask(&mut self, compiled: &CompiledQubo, i: Var, mask: u64) -> u32 {
        let mut deltas = [0.0f64; LANES];
        self.deltas_into(i as usize, &mut deltas);
        self.apply_mask_with_deltas(compiled, i, mask, &deltas)
    }

    /// [`MultiReplicaKernel::apply_mask`] when the caller already holds
    /// this variable's deltas (the sweep loop computes them for the
    /// acceptance decision and reuses them here, like the scalar kernel
    /// reuses `delta(i)` inside `flip`).
    pub fn apply_mask_with_deltas(
        &mut self,
        compiled: &CompiledQubo,
        i: Var,
        mask: u64,
        deltas: &[f64; LANES],
    ) -> u32 {
        debug_assert_eq!(
            mask & !self.lane_mask(),
            0,
            "mask touches lanes beyond the active {}",
            self.lanes
        );
        if mask == 0 {
            return 0;
        }
        let new_word = self.words[i as usize] ^ mask;
        self.words[i as usize] = new_word;
        let count = mask.count_ones();
        // Charge the accepted lanes' energies (sparse: few bits set).
        let mut m = mask;
        while m != 0 {
            let r = m.trailing_zeros() as usize;
            m &= m - 1;
            self.energies[r] += deltas[r];
        }
        // One CSR traversal for the whole word. The per-neighbor fan-out
        // picks between two shapes on the accepted-lane count:
        //
        // * **dense** — a branch-free `fields[r] += dir[r] * q` over all
        //   64 contiguous slots, where `dir[r]` is ±1 for flipped lanes
        //   and 0.0 for the rest. Every lane does a mul+add, but the loop
        //   has no data-dependent indexing, so it runs at full SIMD width
        //   (a hand-held AVX-512 path keeps the eight direction vectors
        //   in registers across the whole neighbor walk). Adding
        //   `0.0 * q` to an untouched slot is exact; it can at most flip
        //   the sign of a zero, which compares equal everywhere
        //   downstream.
        // * **scatter** — walk just the set bits. Cheaper when only a
        //   handful of lanes flipped, where the dense loop's 64 ops
        //   would be mostly wasted.
        if count as usize >= simd::DENSE_MIN_LANES {
            let mut dir = [0.0f64; LANES];
            for (r, d) in dir.iter_mut().enumerate() {
                let flipped = ((mask >> r) & 1) as f64;
                let up = ((new_word >> r) & 1) as f64;
                *d = flipped * (2.0 * up - 1.0);
            }
            simd::fanout(&mut self.fields, compiled.neighbors(i), &dir);
        } else {
            let mut flipped = [(0usize, 0.0f64); LANES];
            let mut k = 0usize;
            let mut m = mask;
            while m != 0 {
                let r = m.trailing_zeros() as usize;
                m &= m - 1;
                let dir = if (new_word >> r) & 1 == 1 { 1.0 } else { -1.0 };
                flipped[k] = (r, dir);
                k += 1;
            }
            let neighbors = compiled.neighbors(i);
            for (idx, &(j, q)) in neighbors.iter().enumerate() {
                if let Some(&(jn, _)) = neighbors.get(idx + 2) {
                    simd::prefetch_block(&self.fields, jn as usize * LANES);
                }
                let base = j as usize * LANES;
                for &(r, dir) in &flipped[..k] {
                    self.fields[base + r] += dir * q;
                }
            }
        }
        count
    }

    /// Swaps the full configurations of lanes `a` and `b` — state bits,
    /// field columns, and energies move as one coherent unit, the
    /// bit-sliced equivalent of replica exchange swapping two scalar
    /// kernels wholesale; O(n).
    pub fn swap_lanes(&mut self, a: usize, b: usize) {
        assert!(
            a < self.lanes && b < self.lanes,
            "swap lanes {a},{b} out of range ({})",
            self.lanes
        );
        if a == b {
            return;
        }
        for w in &mut self.words {
            // Classic bit swap: XOR the pair's difference into both slots.
            let diff = ((*w >> a) ^ (*w >> b)) & 1;
            *w ^= (diff << a) | (diff << b);
        }
        for i in 0..self.words.len() {
            self.fields.swap(i * LANES + a, i * LANES + b);
        }
        self.energies.swap(a, b);
    }
}

/// Dense per-neighbor fan-out of the 64-lane direction vector, with an
/// AVX-512 fast path. Both paths compute `fields[j·64+r] += dir[r] * q`
/// as a strict multiply **then** add (two roundings, never a fused
/// mul-add), so every lane stays bit-identical to the scalar kernel's
/// `field += dir * q` — FMA would round once and silently diverge the
/// replicas from their scalar twins.
mod simd {
    use super::LANES;
    use crate::Var;

    /// Flipped-lane count at which `apply_mask_with_deltas` switches from
    /// the scatter walk to the dense fan-out. Below this, updating only
    /// the set bits is cheaper than touching all 64 slots.
    pub const DENSE_MIN_LANES: usize = 8;

    /// Hints one 64-slot field block (eight cache lines) toward L1.
    /// Pure hint; a no-op on non-x86 targets.
    #[inline]
    pub fn prefetch_block(fields: &[f64], base: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // In-bounds by construction: `base` is a variable's first slot.
            let p = unsafe { fields.as_ptr().add(base).cast::<i8>() };
            for line in 0..(LANES / 8) {
                unsafe { _mm_prefetch::<_MM_HINT_T0>(p.add(line * 64)) };
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (fields, base);
        }
    }

    /// `fields[j·LANES + r] += dir[r] * q` for every neighbor `(j, q)`.
    pub fn fanout(fields: &mut [f64], neighbors: &[(Var, f64)], dir: &[f64; LANES]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: avx512f was just verified on the running CPU, and
            // every store stays inside `fields` (checked in the callee).
            unsafe { fanout_avx512(fields, neighbors, dir) };
            return;
        }
        fanout_portable(fields, neighbors, dir);
    }

    /// Autovectorized fallback: one contiguous 64-slot block per
    /// neighbor; LLVM emits mul+add at whatever SIMD width the target
    /// offers.
    fn fanout_portable(fields: &mut [f64], neighbors: &[(Var, f64)], dir: &[f64; LANES]) {
        for &(j, q) in neighbors {
            let base = j as usize * LANES;
            let block = &mut fields[base..base + LANES];
            for r in 0..LANES {
                block[r] += dir[r] * q;
            }
        }
    }

    /// Hand-held AVX-512 fan-out: the eight 8-wide direction vectors are
    /// hoisted into registers once and reused across the entire CSR
    /// walk, so each neighbor costs one broadcast plus eight
    /// load/mul/add/store quartets (`vmulpd` + `vaddpd`, deliberately
    /// not `vfmadd`, to preserve scalar rounding).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `avx512f`. In-bounds access is
    /// guaranteed here: every neighbor index `j` satisfies
    /// `(j+1)·LANES ≤ fields.len()` by kernel construction, and is
    /// debug-asserted.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn fanout_avx512(fields: &mut [f64], neighbors: &[(Var, f64)], dir: &[f64; LANES]) {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_storeu_pd,
            _mm_prefetch, _MM_HINT_T0,
        };
        let d = dir.as_ptr();
        let d0 = _mm512_loadu_pd(d);
        let d1 = _mm512_loadu_pd(d.add(8));
        let d2 = _mm512_loadu_pd(d.add(16));
        let d3 = _mm512_loadu_pd(d.add(24));
        let d4 = _mm512_loadu_pd(d.add(32));
        let d5 = _mm512_loadu_pd(d.add(40));
        let d6 = _mm512_loadu_pd(d.add(48));
        let d7 = _mm512_loadu_pd(d.add(56));
        // The CSR walk's future addresses are known: pull each block's
        // eight lines toward L1 two neighbors ahead so the L2 latency
        // overlaps the current block's arithmetic instead of stalling it.
        const AHEAD: usize = 3;
        for (idx, &(j, q)) in neighbors.iter().enumerate() {
            if let Some(&(jn, _)) = neighbors.get(idx + AHEAD) {
                let pf = fields.as_ptr().add(jn as usize * LANES).cast::<i8>();
                for line in 0..8 {
                    _mm_prefetch::<_MM_HINT_T0>(pf.add(line * 64));
                }
            }
            let base = j as usize * LANES;
            debug_assert!(base + LANES <= fields.len());
            let qv = _mm512_set1_pd(q);
            let p = fields.as_mut_ptr().add(base);
            _mm512_storeu_pd(p, _mm512_add_pd(_mm512_loadu_pd(p), _mm512_mul_pd(d0, qv)));
            let p1 = p.add(8);
            _mm512_storeu_pd(
                p1,
                _mm512_add_pd(_mm512_loadu_pd(p1), _mm512_mul_pd(d1, qv)),
            );
            let p2 = p.add(16);
            _mm512_storeu_pd(
                p2,
                _mm512_add_pd(_mm512_loadu_pd(p2), _mm512_mul_pd(d2, qv)),
            );
            let p3 = p.add(24);
            _mm512_storeu_pd(
                p3,
                _mm512_add_pd(_mm512_loadu_pd(p3), _mm512_mul_pd(d3, qv)),
            );
            let p4 = p.add(32);
            _mm512_storeu_pd(
                p4,
                _mm512_add_pd(_mm512_loadu_pd(p4), _mm512_mul_pd(d4, qv)),
            );
            let p5 = p.add(40);
            _mm512_storeu_pd(
                p5,
                _mm512_add_pd(_mm512_loadu_pd(p5), _mm512_mul_pd(d5, qv)),
            );
            let p6 = p.add(48);
            _mm512_storeu_pd(
                p6,
                _mm512_add_pd(_mm512_loadu_pd(p6), _mm512_mul_pd(d6, qv)),
            );
            let p7 = p.add(56);
            _mm512_storeu_pd(
                p7,
                _mm512_add_pd(_mm512_loadu_pd(p7), _mm512_mul_pd(d7, qv)),
            );
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn dispatched_fanout_matches_portable_bit_for_bit() {
            // Whatever path `fanout` picks on this machine must produce
            // exactly the floats the portable mul+add loop produces — the
            // SIMD path is a speed dispatch, never a semantics change.
            let neighbors: Vec<(Var, f64)> = (0..7u32).map(|j| (j, 0.1 + f64::from(j))).collect();
            let mut dir = [0.0f64; LANES];
            for (r, d) in dir.iter_mut().enumerate() {
                *d = match r % 3 {
                    0 => 1.0,
                    1 => -1.0,
                    _ => 0.0,
                };
            }
            let mut a: Vec<f64> = (0..7 * LANES).map(|k| (k as f64).sin()).collect();
            let mut b = a.clone();
            fanout(&mut a, &neighbors, &dir);
            fanout_portable(&mut b, &neighbors, &dir);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlipKernel, QuboModel};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = QuboModel::new(n);
        for i in 0..n as Var {
            m.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n as Var {
            for j in (i + 1)..n as Var {
                if rng.gen_bool(0.4) {
                    m.add_quadratic(i, j, rng.gen_range(-2.0..2.0));
                }
            }
        }
        m.add_offset(rng.gen_range(-1.0..1.0));
        m
    }

    fn random_states(lanes: usize, n: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..lanes)
            .map(|_| (0..n).map(|_| rng.gen_range(0..=1u8)).collect())
            .collect()
    }

    #[test]
    fn construction_matches_scalar_kernels_exactly() {
        let m = random_model(12, 3);
        let c = CompiledQubo::compile(&m);
        let states = random_states(17, 12, 9);
        let multi = MultiReplicaKernel::new(&c, &states);
        assert_eq!(multi.lanes(), 17);
        for (r, state) in states.iter().enumerate() {
            let scalar = FlipKernel::new(&c, state.clone());
            assert_eq!(multi.state(r), *state);
            assert_eq!(multi.energy(r), scalar.energy(), "lane {r} energy");
            for i in 0..12 as Var {
                assert_eq!(multi.delta(i, r), scalar.delta(i), "lane {r} var {i}");
            }
        }
    }

    #[test]
    fn apply_mask_matches_scalar_flips_bit_for_bit() {
        let m = random_model(10, 7);
        let c = CompiledQubo::compile(&m);
        let states = random_states(5, 10, 1);
        let mut multi = MultiReplicaKernel::new(&c, &states);
        let mut scalars: Vec<FlipKernel> = states
            .iter()
            .map(|s| FlipKernel::new(&c, s.clone()))
            .collect();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..400 {
            let i = rng.gen_range(0..10) as Var;
            let mask = rng.gen::<u64>() & multi.lane_mask();
            let applied = multi.apply_mask(&c, i, mask);
            assert_eq!(applied, mask.count_ones());
            for (r, scalar) in scalars.iter_mut().enumerate() {
                if (mask >> r) & 1 == 1 {
                    scalar.flip(&c, i);
                }
                // Exact equality: the whole point of the layout is that
                // float op order matches the scalar kernel per lane.
                assert_eq!(multi.energy(r), scalar.energy(), "lane {r}");
                for v in 0..10 as Var {
                    assert_eq!(multi.delta(v, r), scalar.delta(v), "lane {r} var {v}");
                }
            }
        }
        for (r, scalar) in scalars.iter().enumerate() {
            assert_eq!(multi.state(r), scalar.state());
        }
    }

    #[test]
    fn deltas_into_matches_per_lane_delta() {
        let m = random_model(8, 5);
        let c = CompiledQubo::compile(&m);
        let states = random_states(64, 8, 2);
        let k = MultiReplicaKernel::new(&c, &states);
        let mut out = [0.0f64; LANES];
        for i in 0..8usize {
            k.deltas_into(i, &mut out);
            for (r, &d) in out.iter().enumerate() {
                assert_eq!(d, k.delta(i as Var, r));
            }
        }
    }

    #[test]
    fn swap_lanes_moves_state_fields_and_energy_as_one_unit() {
        let m = random_model(9, 13);
        let c = CompiledQubo::compile(&m);
        let states = random_states(8, 9, 4);
        let mut k = MultiReplicaKernel::new(&c, &states);
        let (s2, e2) = (k.state(2), k.energy(2));
        let (s6, e6) = (k.state(6), k.energy(6));
        k.swap_lanes(2, 6);
        assert_eq!(k.state(2), s6);
        assert_eq!(k.state(6), s2);
        assert_eq!(k.energy(2), e6);
        assert_eq!(k.energy(6), e2);
        // Fields swapped too: deltas now describe the swapped states.
        for i in 0..9 as Var {
            let fresh2 = FlipKernel::new(&c, k.state(2));
            let fresh6 = FlipKernel::new(&c, k.state(6));
            assert_eq!(k.delta(i, 2), fresh2.delta(i));
            assert_eq!(k.delta(i, 6), fresh6.delta(i));
        }
        // Untouched lanes stay put.
        assert_eq!(k.state(0), states[0]);
        k.swap_lanes(3, 3); // self-swap is a no-op
        assert_eq!(k.state(3), states[3]);
    }

    #[test]
    fn into_reads_preserves_lane_order() {
        let m = random_model(6, 21);
        let c = CompiledQubo::compile(&m);
        let states = random_states(3, 6, 8);
        let k = MultiReplicaKernel::new(&c, &states);
        let energies: Vec<f64> = (0..3).map(|r| k.energy(r)).collect();
        let reads = k.into_reads();
        assert_eq!(reads.len(), 3);
        for (r, (state, energy)) in reads.iter().enumerate() {
            assert_eq!(*state, states[r]);
            assert_eq!(*energy, energies[r]);
        }
    }

    #[test]
    fn full_64_lane_word_uses_every_bit() {
        let m = random_model(4, 2);
        let c = CompiledQubo::compile(&m);
        let states: Vec<Vec<u8>> = (0..64).map(|r| vec![(r % 2) as u8; 4]).collect();
        let k = MultiReplicaKernel::new(&c, &states);
        assert_eq!(k.lane_mask(), u64::MAX);
        assert_eq!(k.word(0), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(k.state(63), vec![1; 4]);
    }

    #[test]
    #[should_panic(expected = "1..=64 replica states")]
    fn rejects_empty_replica_set() {
        let c = CompiledQubo::compile(&QuboModel::new(2));
        MultiReplicaKernel::new(&c, &[]);
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn rejects_wrong_length_state() {
        let c = CompiledQubo::compile(&QuboModel::new(3));
        MultiReplicaKernel::new(&c, &[vec![0, 1]]);
    }

    #[test]
    fn empty_model_kernel() {
        let c = CompiledQubo::compile(&QuboModel::new(0));
        let k = MultiReplicaKernel::new(&c, &[Vec::new(), Vec::new()]);
        assert_eq!(k.num_vars(), 0);
        assert_eq!(k.energy(0), 0.0);
        assert_eq!(k.state(1), Vec::<u8>::new());
    }
}
