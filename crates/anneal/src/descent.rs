//! Greedy steepest-descent local search.

use crate::probes::{Decimator, ProbeConfig, SamplerDynamics};
use crate::{read_seed, SampleSet, Sampler, SamplerRunStats};
use qsmt_qubo::{CompiledQubo, FlipKernel, QuboModel, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::Instant;

/// Steepest descent: from a random state, repeatedly flip the variable with
/// the most negative energy delta until no flip improves. Each read lands on
/// a local minimum; with enough restarts small models are solved exactly.
///
/// Also used as a post-processing pass over annealer output (the D-Wave
/// stack calls this "greedy postprocessing").
#[derive(Debug, Clone)]
pub struct SteepestDescent {
    num_reads: usize,
    seed: u64,
    max_steps: usize,
}

impl Default for SteepestDescent {
    fn default() -> Self {
        Self {
            num_reads: 32,
            seed: 0,
            max_steps: 100_000,
        }
    }
}

impl SteepestDescent {
    /// Creates a descent sampler with 32 restarts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of random restarts.
    pub fn with_num_reads(mut self, n: usize) -> Self {
        self.num_reads = n;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of descent steps per read (safety valve; descent on
    /// a finite landscape always terminates, this guards against
    /// pathological float behaviour).
    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Descends from the given state to its local minimum, returning the
    /// minimum and its energy.
    pub fn descend(compiled: &CompiledQubo, state: Vec<u8>, max_steps: usize) -> (Vec<u8>, f64) {
        let (state, energy, _) = Self::descend_counted(compiled, state, max_steps);
        (state, energy)
    }

    /// [`SteepestDescent::descend`] plus the number of flips taken —
    /// `flips + 1` full delta scans were performed (the last scan finds no
    /// improving move), which feeds the proposal counter in
    /// [`Sampler::sample_stats`].
    fn descend_counted(
        compiled: &CompiledQubo,
        state: Vec<u8>,
        max_steps: usize,
    ) -> (Vec<u8>, f64, u64) {
        let n = compiled.num_vars();
        // The kernel makes each scan O(n) instead of O(n·avg-degree).
        let mut kernel = FlipKernel::new(compiled, state);
        let mut flips = 0u64;
        for _ in 0..max_steps {
            let mut best_var: Option<Var> = None;
            let mut best_delta = -1e-12f64;
            for i in 0..n {
                let d = kernel.delta(i as Var);
                if d < best_delta {
                    best_delta = d;
                    best_var = Some(i as Var);
                }
            }
            match best_var {
                Some(i) => {
                    kernel.flip(compiled, i);
                    flips += 1;
                }
                None => break,
            }
        }
        let energy = kernel.energy();
        (kernel.into_state(), energy, flips)
    }

    /// [`SteepestDescent::descend_counted`] with a trajectory probe: the
    /// same flip sequence (no RNG involved), plus a decimated
    /// energy-after-flip trace (axis = accepted flips).
    fn descend_probed(
        compiled: &CompiledQubo,
        state: Vec<u8>,
        max_steps: usize,
        config: &ProbeConfig,
        dynamics: &mut SamplerDynamics,
    ) -> (Vec<u8>, f64, u64) {
        let n = compiled.num_vars();
        let mut kernel = FlipKernel::new(compiled, state);
        let mut flips = 0u64;
        let mut trace = Decimator::new(config.max_trace_points);
        trace.push(0, kernel.energy());
        for _ in 0..max_steps {
            let mut best_var: Option<Var> = None;
            let mut best_delta = -1e-12f64;
            for i in 0..n {
                let d = kernel.delta(i as Var);
                if d < best_delta {
                    best_delta = d;
                    best_var = Some(i as Var);
                }
            }
            match best_var {
                Some(i) => {
                    kernel.flip(compiled, i);
                    flips += 1;
                    trace.push(flips, kernel.energy());
                }
                None => break,
            }
        }
        dynamics.energy_trace = trace.finish();
        let energy = kernel.energy();
        (kernel.into_state(), energy, flips)
    }

    /// Applies descent to every state of an existing sample set (greedy
    /// post-processing), re-aggregating the results.
    pub fn polish(&self, model: &QuboModel, set: &SampleSet) -> SampleSet {
        let compiled = CompiledQubo::compile(model);
        let reads: Vec<(Vec<u8>, f64)> = set
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.state.clone(), s.occurrences as usize))
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|state| Self::descend(&compiled, state, self.max_steps))
            .collect();
        SampleSet::from_reads(reads)
    }
}

impl Sampler for SteepestDescent {
    fn sample(&self, model: &QuboModel) -> SampleSet {
        let (reads, _) = self.run(model);
        SampleSet::from_reads(reads)
    }

    fn name(&self) -> &'static str {
        "steepest-descent"
    }

    fn sample_stats(&self, model: &QuboModel) -> (SampleSet, SamplerRunStats) {
        let started = Instant::now();
        let (reads, flips) = self.run(model);
        let elapsed_us = started.elapsed().as_micros() as u64;
        // Every flip was preceded by a full scan of n deltas, and each read
        // ends with one more scan that finds nothing.
        let scans = flips + self.num_reads as u64;
        let stats = SamplerRunStats {
            sweeps: None,
            proposals: Some(scans * model.num_vars() as u64),
            accepted: Some(flips),
            elapsed_us: Some(elapsed_us),
            replicas: None,
        };
        (SampleSet::from_reads(reads), stats)
    }

    fn sample_dynamics(
        &self,
        model: &QuboModel,
        config: &ProbeConfig,
    ) -> (SampleSet, SamplerRunStats, SamplerDynamics) {
        if !config.enabled {
            let (set, stats) = self.sample_stats(model);
            return (set, stats, SamplerDynamics::default());
        }
        let started = Instant::now();
        let compiled = CompiledQubo::compile(model);
        let n = compiled.num_vars();
        let mut dynamics = SamplerDynamics::default();
        // Probe read 0 sequentially (energy-per-flip trace); the rest run
        // the plain parallel path.
        let mut results: Vec<(Vec<u8>, f64, u64)> = Vec::with_capacity(self.num_reads);
        if self.num_reads > 0 {
            let mut rng = SmallRng::seed_from_u64(read_seed(self.seed, 0));
            let state: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=1u8)).collect();
            results.push(Self::descend_probed(
                &compiled,
                state,
                self.max_steps,
                config,
                &mut dynamics,
            ));
        }
        let rest: Vec<(Vec<u8>, f64, u64)> = (1..self.num_reads)
            .into_par_iter()
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(read_seed(self.seed, r as u64));
                let state: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=1u8)).collect();
                Self::descend_counted(&compiled, state, self.max_steps)
            })
            .collect();
        results.extend(rest);
        let flips: u64 = results.iter().map(|(_, _, f)| f).sum();
        let reads: Vec<(Vec<u8>, f64)> = results.into_iter().map(|(s, e, _)| (s, e)).collect();
        let elapsed_us = started.elapsed().as_micros() as u64;
        let scans = flips + self.num_reads as u64;
        let stats = SamplerRunStats {
            sweeps: None,
            proposals: Some(scans * model.num_vars() as u64),
            accepted: Some(flips),
            elapsed_us: Some(elapsed_us),
            replicas: None,
        };
        (SampleSet::from_reads(reads), stats, dynamics)
    }
}

impl SteepestDescent {
    /// Runs every restart, returning the reads and the total flip count.
    fn run(&self, model: &QuboModel) -> (Vec<(Vec<u8>, f64)>, u64) {
        let compiled = CompiledQubo::compile(model);
        let n = compiled.num_vars();
        let results: Vec<(Vec<u8>, f64, u64)> = (0..self.num_reads)
            .into_par_iter()
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(read_seed(self.seed, r as u64));
                let state: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=1u8)).collect();
                Self::descend_counted(&compiled, state, self.max_steps)
            })
            .collect();
        let flips = results.iter().map(|(_, _, f)| f).sum();
        let reads = results.into_iter().map(|(s, e, _)| (s, e)).collect();
        (reads, flips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_to_local_minimum() {
        // E = -x0 - x1 + 2 x0 x1 has two local minima (10 and 01) at -1.
        let mut m = QuboModel::new(2);
        m.add_linear(0, -1.0);
        m.add_linear(1, -1.0);
        m.add_quadratic(0, 1, 2.0);
        let c = CompiledQubo::compile(&m);
        let (s, e) = SteepestDescent::descend(&c, vec![0, 0], 100);
        assert_eq!(e, -1.0);
        assert!(s == vec![1, 0] || s == vec![0, 1]);
    }

    #[test]
    fn local_minimum_is_fixed_point() {
        let mut m = QuboModel::new(2);
        m.add_linear(0, -1.0);
        let c = CompiledQubo::compile(&m);
        let (s, _) = SteepestDescent::descend(&c, vec![1, 0], 100);
        let (s2, _) = SteepestDescent::descend(&c, s.clone(), 100);
        assert_eq!(s, s2);
    }

    #[test]
    fn restarts_find_global_optimum_on_easy_model() {
        let mut m = QuboModel::new(5);
        for i in 0..5u32 {
            m.add_linear(i, if i % 2 == 0 { -1.0 } else { 1.0 });
        }
        let set = SteepestDescent::new().with_seed(1).sample(&m);
        assert_eq!(set.best().unwrap().state, vec![1, 0, 1, 0, 1]);
        assert_eq!(set.lowest_energy().unwrap(), -3.0);
    }

    #[test]
    fn polish_never_raises_energy() {
        let mut m = QuboModel::new(4);
        m.add_linear(0, -1.0);
        m.add_quadratic(1, 2, -1.0);
        let rough = SampleSet::from_reads(vec![
            (vec![0, 0, 0, 0], m.energy(&[0, 0, 0, 0])),
            (vec![0, 1, 0, 1], m.energy(&[0, 1, 0, 1])),
        ]);
        let rough_best = rough.lowest_energy().unwrap();
        let polished = SteepestDescent::new().polish(&m, &rough);
        assert!(polished.lowest_energy().unwrap() <= rough_best);
        assert_eq!(polished.total_reads(), rough.total_reads());
    }

    #[test]
    fn deterministic_for_seed() {
        let mut m = QuboModel::new(6);
        m.add_quadratic(0, 5, -1.0);
        let a = SteepestDescent::new().with_seed(4).sample(&m);
        let b = SteepestDescent::new().with_seed(4).sample(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn probed_run_returns_identical_samples() {
        let mut m = QuboModel::new(6);
        for i in 0..6u32 {
            m.add_linear(i, if i % 2 == 0 { -1.0 } else { 0.5 });
        }
        m.add_quadratic(0, 5, -1.0);
        let sd = SteepestDescent::new().with_seed(8);
        let plain = sd.sample(&m);
        let (probed, stats, dynamics) = sd.sample_dynamics(&m, &ProbeConfig::default());
        assert_eq!(probed, plain, "probes must not change results");
        // Descent is strictly monotone: every flip lowers the energy, and
        // the trace axis counts accepted flips starting from step 0.
        assert!(dynamics.energy_trace.len() >= 2);
        assert_eq!(dynamics.energy_trace.first().unwrap().sweep, 0);
        assert!(dynamics
            .energy_trace
            .windows(2)
            .all(|w| w[1].best_energy < w[0].best_energy));
        assert!(stats.accepted.unwrap() >= dynamics.energy_trace.last().unwrap().sweep);
        let (off, _, empty) = sd.sample_dynamics(&m, &ProbeConfig::disabled());
        assert_eq!(off, plain);
        assert!(empty.is_empty());
    }
}
