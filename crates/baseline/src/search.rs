//! Search bookkeeping shared by the classical solver.

/// Statistics from one classical solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Prefix nodes expanded during the search (1 for direct computes).
    pub nodes: u64,
    /// Candidate strings fully constructed and tested.
    pub candidates_tested: u64,
    /// Whether the node budget was exhausted before an answer was found.
    pub budget_exhausted: bool,
}

impl SearchStats {
    /// A single-node stat block for directly-computed answers.
    pub fn direct() -> Self {
        Self {
            nodes: 1,
            candidates_tested: 1,
            budget_exhausted: false,
        }
    }
}
