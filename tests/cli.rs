//! Integration tests for the `qsmt` CLI binary: the interface a
//! downstream user scripts against.

use std::process::Command;

fn qsmt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsmt"))
}

fn corpus(name: &str) -> String {
    format!("{}/benchmarks/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn solve_deterministic_corpus_file() {
    let out = qsmt()
        .args(["solve", &corpus("table1_row1_reverse_replace.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("sat"), "got: {stdout}");
    assert!(stdout.contains("\"ollah\""));
}

#[test]
fn solve_with_alternate_samplers() {
    for sampler in ["sqa", "pt", "tabu", "descent", "population"] {
        let out = qsmt()
            .args([
                "solve",
                &corpus("table1_row1_reverse_replace.smt2"),
                "--sampler",
                sampler,
                "--reads",
                "16",
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "sampler {sampler} failed");
        let stdout = String::from_utf8(out.stdout).expect("utf8");
        assert!(
            stdout.contains("\"ollah\""),
            "sampler {sampler} wrong answer: {stdout}"
        );
    }
}

#[test]
fn exact_sampler_solves_small_goals_and_rejects_large_ones_gracefully() {
    // 7 indicator variables: well inside the exact enumerator's limit.
    let out = qsmt()
        .args(["solve", &corpus("indexof_query.smt2"), "--sampler", "exact"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("6"), "indexof answer: {stdout}");

    // 35 string bits: beyond the limit — a clean error, not a crash.
    let out = qsmt()
        .args([
            "solve",
            &corpus("table1_row1_reverse_replace.smt2"),
            "--sampler",
            "exact",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("cannot solve"), "stderr: {stderr}");
}

#[test]
fn unsat_corpus_file_reports_unsat() {
    let out = qsmt()
        .args(["solve", &corpus("unsat_regex_length.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout.trim(), "unsat");
}

#[test]
fn dump_emits_qbsolv_format_that_round_trips() {
    let out = qsmt()
        .args(["dump", &corpus("table1_row2_palindrome.smt2")])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("p qubo 0 42"), "header missing: {stdout}");
    let model = qsmt::qubo::from_qbsolv(&stdout).expect("dump output parses back");
    assert_eq!(model.num_vars(), 42);
    assert!(model.num_interactions() > 0, "palindrome has couplings");
}

#[test]
fn demo_solves_all_rows() {
    let out = qsmt()
        .args(["demo", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.starts_with("sat"));
    assert!(stdout.contains("row1"));
    assert!(stdout.contains("\"hexxo worxd\""));
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let out = qsmt().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("USAGE"));

    let out = qsmt()
        .args(["solve", "/nonexistent/file.smt2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = qsmt()
        .args(["demo", "--sampler", "bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown sampler"));
}

#[test]
fn watch_unreachable_target_exits_nonzero_fast() {
    // `qsmt watch` doubles as a health probe: an unreachable scrape
    // target must produce a prompt non-zero exit with the address in
    // the error, not a hang (a hung probe reads as healthy to most
    // supervisors). Port 1 is essentially never listening.
    let started = std::time::Instant::now();
    let out = qsmt()
        .args(["watch", "127.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "watch against a dead endpoint must exit non-zero"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(stderr.contains("127.0.0.1:1"), "stderr: {stderr}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "watch took {:?}; connect timeout is not bounding the probe",
        started.elapsed()
    );
}

#[test]
fn serve_and_submit_reject_bad_flag_values() {
    for args in [
        ["serve", "--metrics-addr", "127.0.0.1:0", "--workers", "0"],
        [
            "serve",
            "--metrics-addr",
            "127.0.0.1:0",
            "--queue-depth",
            "0",
        ],
        [
            "serve",
            "--metrics-addr",
            "127.0.0.1:0",
            "--job-timeout",
            "0",
        ],
    ] {
        let out = qsmt().args(args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} should be rejected");
    }

    // submit without enough positional arguments prints usage.
    let out = qsmt().args(["submit"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}
