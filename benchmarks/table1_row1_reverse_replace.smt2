; Table 1 row 1: reverse "hello" then replace 'e' with 'a'  => "ollah"
(set-logic QF_S)
(declare-const x String)
(assert (= x (str.replace_all (str.rev "hello") "e" "a")))
(check-sat)
(get-model)
