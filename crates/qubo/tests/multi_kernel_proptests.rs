//! Property-based bit-identity pin for the bit-sliced
//! [`MultiReplicaKernel`]: on arbitrary models, fed an arbitrary
//! accept/reject decision stream, lane `r` of the word-wide kernel must
//! agree **exactly** — state, energy, and every local field — with an
//! independent scalar [`FlipKernel`] applying the same decisions, both
//! mid-stream and after a [`StopFlag`] cancellation cuts the stream
//! short. Exact means `==` on the floats: the word-wide update performs
//! the same `mul`/`add` sequence in scalar order (never fused), so the
//! only tolerated difference is the sign of zero, which `==` treats as
//! equal.

use proptest::prelude::*;
use qsmt_qubo::{CompiledQubo, FlipKernel, MultiReplicaKernel, QuboModel, StopFlag, Var, LANES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn arb_model() -> impl Strategy<Value = QuboModel> {
    let linear = proptest::collection::vec(-5.0f64..5.0, 2..=12);
    let quads = proptest::collection::vec((0usize..12, 0usize..12, -5.0f64..5.0), 0..=30);
    (linear, quads).prop_map(|(lin, quads)| {
        let n = lin.len();
        let mut m = QuboModel::new(n);
        for (i, v) in lin.into_iter().enumerate() {
            m.add_linear(i as u32, v);
        }
        for (a, b, v) in quads {
            let (a, b) = (a % n, b % n);
            if a != b {
                m.add_quadratic(a as u32, b as u32, v);
            }
        }
        m
    })
}

/// A decision stream: `(variable pick, raw lane mask)` pairs.
fn arb_stream(len_max: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..4096, 0u64..u64::MAX), 0..=len_max)
}

/// Per-lane initial states drawn from a seeded stream, mirroring how the
/// samplers derive read initials.
fn lane_states(n: usize, lanes: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..lanes)
        .map(|r| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37));
            (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect()
        })
        .collect()
}

/// Asserts lane-by-lane exact agreement of state, energy, and every
/// local field (via the flip deltas, which read the fields directly).
fn assert_lanes_match(
    kernel: &MultiReplicaKernel,
    scalars: &[FlipKernel],
    context: &str,
) -> Result<(), TestCaseError> {
    let n = kernel.num_vars();
    for (r, scalar) in scalars.iter().enumerate() {
        prop_assert_eq!(
            kernel.state(r),
            scalar.state(),
            "{}: state lane {}",
            context,
            r
        );
        prop_assert!(
            kernel.energy(r) == scalar.energy(),
            "{}: energy lane {}: {} vs {}",
            context,
            r,
            kernel.energy(r),
            scalar.energy()
        );
        for i in 0..n as Var {
            prop_assert!(
                kernel.delta(i, r) == scalar.delta(i),
                "{}: field lane {} var {}: {} vs {}",
                context,
                r,
                i,
                kernel.delta(i, r),
                scalar.delta(i)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same decision stream, word-wide vs scalar twins: every decision
    /// `(i, mask)` flips variable `i` in exactly the lanes whose mask
    /// bit is set. Agreement is checked continuously (the word-wide
    /// deltas against each scalar's delta before every application) and
    /// exhaustively at the end.
    #[test]
    fn shared_decision_stream_keeps_every_lane_bit_identical(
        m in arb_model(),
        lanes in 1usize..=64,
        seed in 0u64..u64::MAX,
        stream in arb_stream(120),
    ) {
        let c = CompiledQubo::compile(&m);
        let n = c.num_vars();
        let states = lane_states(n, lanes, seed);
        let mut kernel = MultiReplicaKernel::new(&c, &states);
        let mut scalars: Vec<FlipKernel> = states
            .iter()
            .map(|s| FlipKernel::new(&c, s.clone()))
            .collect();
        assert_lanes_match(&kernel, &scalars, "after construction")?;

        let mut deltas = [0.0f64; LANES];
        for (step, &(raw, mask_raw)) in stream.iter().enumerate() {
            let i = (raw % n) as Var;
            let mask = mask_raw & kernel.lane_mask();
            kernel.deltas_into(i as usize, &mut deltas);
            for (r, scalar) in scalars.iter().enumerate() {
                prop_assert!(
                    deltas[r] == scalar.delta(i),
                    "step {}: delta lane {} var {}: {} vs {}",
                    step, r, i, deltas[r], scalar.delta(i)
                );
            }
            let applied = kernel.apply_mask_with_deltas(&c, i, mask, &deltas);
            prop_assert_eq!(applied, mask.count_ones(), "step {}", step);
            for (r, scalar) in scalars.iter_mut().enumerate() {
                if mask & (1 << r) != 0 {
                    scalar.flip(&c, i);
                }
            }
        }
        assert_lanes_match(&kernel, &scalars, "after stream")?;
    }

    /// A [`StopFlag`] tripped mid-stream cuts both the word-wide run and
    /// the scalar twins at the same decision boundary; the states reached
    /// at the cut must agree exactly — the cancellation contract the
    /// samplers rely on (stopping never desynchronizes a batch).
    #[test]
    fn stop_flag_cancellation_mid_stream_preserves_agreement(
        m in arb_model(),
        lanes in 1usize..=64,
        seed in 0u64..u64::MAX,
        stream in arb_stream(80),
        cut_raw in 0usize..4096,
    ) {
        let c = CompiledQubo::compile(&m);
        let n = c.num_vars();
        let states = lane_states(n, lanes, seed);
        let stop_at = cut_raw % (stream.len() + 1);

        // Word-wide run: its own flag, tripped at the cut point.
        let mut kernel = MultiReplicaKernel::new(&c, &states);
        let flag = StopFlag::new();
        let mut deltas = [0.0f64; LANES];
        for (step, &(raw, mask_raw)) in stream.iter().enumerate() {
            if step == stop_at {
                flag.stop();
            }
            if flag.is_stopped() {
                break;
            }
            let i = (raw % n) as Var;
            kernel.deltas_into(i as usize, &mut deltas);
            kernel.apply_mask_with_deltas(&c, i, mask_raw & kernel.lane_mask(), &deltas);
        }

        // Scalar twins: an independent flag, tripped at the same point.
        let mut scalars: Vec<FlipKernel> = states
            .iter()
            .map(|s| FlipKernel::new(&c, s.clone()))
            .collect();
        let scalar_flag = StopFlag::new();
        let lane_mask = if lanes == 64 { u64::MAX } else { (1u64 << lanes) - 1 };
        for (step, &(raw, mask_raw)) in stream.iter().enumerate() {
            if step == stop_at {
                scalar_flag.stop();
            }
            if scalar_flag.is_stopped() {
                break;
            }
            let i = (raw % n) as Var;
            let mask = mask_raw & lane_mask;
            for (r, scalar) in scalars.iter_mut().enumerate() {
                if mask & (1 << r) != 0 {
                    scalar.flip(&c, i);
                }
            }
        }
        assert_lanes_match(&kernel, &scalars, "after cancellation")?;
    }

    /// The packed words always decode to the per-lane states: bit `r` of
    /// `word(i)` is lane `r`'s value of variable `i`.
    #[test]
    fn packed_words_decode_to_lane_states(
        m in arb_model(),
        lanes in 1usize..=64,
        seed in 0u64..u64::MAX,
        stream in arb_stream(60),
    ) {
        let c = CompiledQubo::compile(&m);
        let n = c.num_vars();
        let states = lane_states(n, lanes, seed);
        let mut kernel = MultiReplicaKernel::new(&c, &states);
        let mut deltas = [0.0f64; LANES];
        for &(raw, mask_raw) in &stream {
            let i = (raw % n) as Var;
            kernel.deltas_into(i as usize, &mut deltas);
            kernel.apply_mask_with_deltas(&c, i, mask_raw & kernel.lane_mask(), &deltas);
        }
        for r in 0..lanes {
            let decoded = kernel.state(r);
            for (i, &bit) in decoded.iter().enumerate() {
                prop_assert_eq!(bit, ((kernel.word(i) >> r) & 1) as u8);
            }
        }
    }
}
