//! Portfolio solving: structure-aware routing and first-wins racing.
//!
//! The paper's pipeline hand-picks one strategy per constraint, but the
//! enumeration-vs-annealing crossover measured by `crates/bench` is
//! exactly the question SAT portfolios answer: race complementary
//! solvers and keep the first winner (the SATzilla/ppfolio insight; see
//! also Bian et al., arXiv:1811.02524, on matching annealer encodings to
//! instance structure). This module provides
//!
//! * [`RoutingFeatures`] — the structural facts a routing decision is
//!   made from: model size/density and one-hot structure from the
//!   compiled QUBO, the constraint's transformation/generation class,
//!   and (when solving a script) the absint feature vector's summary.
//! * [`Router`] — a deterministic threshold table mapping features to a
//!   [`PortfolioPlan`]: which members to race ([`MemberKind`]) and each
//!   member's read/sweep budget. The thresholds come from the crossover
//!   bench; `docs/PORTFOLIO.md` records the measured crossover points.
//! * The first-wins race itself ([`StringSolver::solve_portfolio`]):
//!   every plan member runs on its own scoped thread with its own
//!   [`StopFlag`] and RNG stream (derived via `read_seed`, so the
//!   winner's sample set is bit-identical to running that member alone
//!   with the same seed), and the instant one member post-selects a
//!   semantically valid answer it trips every other member's flag.
//!
//! Cancellation is cooperative and loss-free: an untripped flag never
//! touches a sampler's RNG stream, so the winner's result carries no
//! trace of the race. When no member validates, the primary (first)
//! member's outcome is returned — the same verdict routing a single
//! strategy would have produced.

use crate::constraint::Constraint;
use crate::error::ConstraintError;
use crate::problem::{EncodedProblem, Solution};
use crate::solver::{SolveOutcome, StringSolver};
use qsmt_anneal::{
    read_seed, ExactSolver, SampleSet, Sampler, SamplerRunStats, SimulatedAnnealer,
    SimulatedQuantumAnnealer,
};
use qsmt_lint::lint_qubo;
use qsmt_qubo::StopFlag;
use qsmt_telemetry::{
    CompileStats, Json, PortfolioMemberStats, PortfolioStats, PresolveStats, Recorder, SelectStats,
    SolveReport, StageTiming,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Classical-baseline escape hatch: `qsmt-core` cannot depend on
/// `qsmt-baseline` (the baseline depends on this crate), so callers that
/// want a classical member inject it as a closure over the constraint.
/// The hook returns the classical answer, or `None` when the baseline
/// found nothing within its budget.
pub type ClassicalHook = Arc<dyn Fn(&Constraint) -> Option<Solution> + Send + Sync>;

/// Salt folded into the base seed before deriving per-member streams, so
/// member seeds never collide with the per-read streams a solo sampler
/// derives from the same base seed.
const MEMBER_SEED_SALT: u64 = 0x706f_7274_666f_6c69;

/// Derives the RNG seed portfolio member `index` runs with, for a solve
/// whose solver seed is `base`. Pure and deterministic — a solo re-run
/// of the member with this seed reproduces its samples bit for bit.
pub fn member_seed(base: u64, index: usize) -> u64 {
    read_seed(base ^ MEMBER_SEED_SALT, index as u64)
}

/// The strategies a portfolio plan can race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberKind {
    /// Gray-code exact enumeration ([`ExactSolver`]); only planned when
    /// the model fits the enumerable window (≤ the router's var limit).
    Exact,
    /// Simulated annealing.
    Sa,
    /// Simulated quantum annealing (path-integral Trotter slices).
    Sqa,
    /// The classical baseline, injected via [`ClassicalHook`]; only
    /// planned for transformation-class constraints it computes
    /// directly.
    Classical,
}

impl MemberKind {
    /// Stable string form used in JSON, metrics labels, and
    /// `served_from: "portfolio:<member>"`.
    pub fn as_str(self) -> &'static str {
        match self {
            MemberKind::Exact => "exact",
            MemberKind::Sa => "sa",
            MemberKind::Sqa => "sqa",
            MemberKind::Classical => "classical",
        }
    }

    /// The underlying sampler's long name, for the report's sampling
    /// section (matches what a solo run of the member would report).
    pub fn sampler_name(self) -> &'static str {
        match self {
            MemberKind::Exact => "exact",
            MemberKind::Sa => "simulated-annealing",
            MemberKind::Sqa => "simulated-quantum-annealing",
            MemberKind::Classical => "classical",
        }
    }
}

/// One member of a portfolio plan: a strategy plus its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanMember {
    /// The strategy to run.
    pub kind: MemberKind,
    /// Read budget (0 for exact/classical members, which do not sample).
    pub reads: usize,
    /// Sweep budget (0 for exact/classical members).
    pub sweeps: usize,
}

impl PlanMember {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("member", Json::from(self.kind.as_str())),
            ("reads", Json::from(self.reads as u64)),
            ("sweeps", Json::from(self.sweeps as u64)),
        ])
    }

    /// Builds this member's sampler, seeded for determinism and wired to
    /// `stop` for cooperative cancellation. Returns `None` for the
    /// classical member (it runs through the [`ClassicalHook`], not the
    /// sampler trait). Passing `stop: None` reproduces a solo run of the
    /// member — the race winner's samples are bit-identical to it.
    pub fn sampler(&self, seed: u64, stop: Option<StopFlag>) -> Option<Arc<dyn Sampler>> {
        match self.kind {
            MemberKind::Exact => Some(Arc::new(ExactSolver::new())),
            MemberKind::Sa => {
                let mut s = SimulatedAnnealer::new()
                    .with_num_reads(self.reads)
                    .with_sweeps(self.sweeps)
                    .with_seed(seed);
                if let Some(stop) = stop {
                    s = s.with_stop(stop);
                }
                Some(Arc::new(s))
            }
            MemberKind::Sqa => {
                let mut s = SimulatedQuantumAnnealer::new()
                    .with_num_reads(self.reads)
                    .with_sweeps(self.sweeps)
                    .with_seed(seed);
                if let Some(stop) = stop {
                    s = s.with_stop(stop);
                }
                Some(Arc::new(s))
            }
            MemberKind::Classical => None,
        }
    }
}

/// Script-level facts the core solver cannot see on its own, lifted from
/// the absint [`FeatureVector`](https://docs.rs) by `qsmt-smtlib` (which
/// depends on both crates). All zero when solving a bare constraint.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScriptFacts {
    /// Declared string variables in the script.
    pub string_vars: usize,
    /// Total assertions.
    pub assertions: usize,
    /// `str.in_re` assertions (regex membership — the most degenerate
    /// generation encodings).
    pub regexes: usize,
    /// `str.contains` assertions.
    pub contains: usize,
    /// Positions proven by absint to hold exactly one character.
    pub pinned_positions: usize,
    /// Mean admissible-character count over materialized positions
    /// (128.0 = fully unconstrained, 0 when unknown).
    pub avg_position_width: f64,
}

/// The feature vector a routing decision is made from: compiled-model
/// structure (var count, density, one-hot groups from `qsmt-lint`), the
/// constraint's class, and optional script-level enrichment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingFeatures {
    /// QUBO variable count of the compiled model.
    pub num_vars: usize,
    /// Off-diagonal interaction density: interactions over possible
    /// pairs (0 for models with fewer than two variables).
    pub density: f64,
    /// One-hot cliques recovered from the compiled penalty structure.
    pub one_hot_groups: usize,
    /// Whether the constraint is transformation-class (equality, concat,
    /// replace, reverse, includes): the classical baseline computes
    /// these directly in linear time, so enumeration never pays off.
    pub transformation_only: bool,
    /// Script-level enrichment (all zero for bare constraints).
    pub script: ScriptFacts,
}

impl RoutingFeatures {
    /// Computes the model-level features from a compiled problem and its
    /// source constraint.
    pub fn from_problem(problem: &EncodedProblem, constraint: &Constraint) -> Self {
        let n = problem.qubo.num_vars();
        let pairs = n.saturating_sub(1) * n / 2;
        RoutingFeatures {
            num_vars: n,
            density: if pairs == 0 {
                0.0
            } else {
                problem.qubo.num_interactions() as f64 / pairs as f64
            },
            one_hot_groups: qsmt_lint::infer_groups(&problem.qubo).len(),
            transformation_only: is_transformation(constraint),
            script: ScriptFacts::default(),
        }
    }

    /// Merges script-level facts (absint feature summary) into the
    /// vector before routing.
    pub fn merge_script(&mut self, facts: &ScriptFacts) {
        self.script = *facts;
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("num_vars", Json::from(self.num_vars as u64)),
            ("density", Json::from(self.density)),
            ("one_hot_groups", Json::from(self.one_hot_groups as u64)),
            ("transformation_only", Json::from(self.transformation_only)),
            ("string_vars", Json::from(self.script.string_vars as u64)),
            ("assertions", Json::from(self.script.assertions as u64)),
            ("regexes", Json::from(self.script.regexes as u64)),
            ("contains", Json::from(self.script.contains as u64)),
            (
                "pinned_positions",
                Json::from(self.script.pinned_positions as u64),
            ),
            (
                "avg_position_width",
                Json::from(self.script.avg_position_width),
            ),
        ])
    }
}

/// Transformation-class constraints have a direct classical answer (the
/// baseline computes them without search); everything else is a
/// generation constraint where enumeration or annealing must search.
fn is_transformation(c: &Constraint) -> bool {
    match c {
        Constraint::Equality { .. }
        | Constraint::Concat { .. }
        | Constraint::ReplaceAll { .. }
        | Constraint::ReplaceFirst { .. }
        | Constraint::Reverse { .. }
        | Constraint::Includes { .. } => true,
        Constraint::Pinned { inner, .. } => is_transformation(inner),
        Constraint::All(parts) => parts.iter().all(is_transformation),
        _ => false,
    }
}

/// A routed portfolio plan: the members to race, their budgets, the
/// predicted winner class, and the features the decision was made from.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioPlan {
    /// Members in priority order; `members[0]` is the primary — the
    /// strategy single-strategy routing would have picked, and the
    /// fallback answer when no member validates.
    pub members: Vec<PlanMember>,
    /// The member class the router predicts will win.
    pub predicted: MemberKind,
    /// The feature vector the plan was routed from.
    pub features: RoutingFeatures,
}

impl PortfolioPlan {
    /// Serializes as a JSON object (the shape snapshotted by
    /// `benchmarks/portfolio_expected.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "members",
                Json::Arr(self.members.iter().map(PlanMember::to_json).collect()),
            ),
            ("predicted_winner", Json::from(self.predicted.as_str())),
            ("features", self.features.to_json()),
        ])
    }
}

/// The deterministic routing table: pure threshold rules from
/// [`RoutingFeatures`] to a [`PortfolioPlan`]. Thresholds are derived
/// from the crossover bench in `crates/bench` (see `docs/PORTFOLIO.md`
/// for the measured crossover data).
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    /// Largest model exact enumeration races on (2^26 Gray-code steps
    /// stay under a second; beyond that annealers win the crossover).
    pub exact_var_limit: usize,
    /// Read budget for annealer members on non-degenerate models.
    pub base_reads: usize,
    /// Read budget when the encoding is degenerate (regex membership or
    /// wide admissible-character positions): post-selection needs more
    /// reads to surface a valid sample.
    pub degenerate_reads: usize,
    /// Sweep budget for racing annealer members.
    pub anneal_sweeps: usize,
    /// Read budget of the annealer backstop behind exact/classical
    /// primaries (generous: the backstop only matters when the primary
    /// fails, and it is cancelled the instant the primary wins).
    pub backstop_reads: usize,
    /// Sweep budget of the annealer backstop.
    pub backstop_sweeps: usize,
    /// Mean admissible-character width above which an encoding counts as
    /// degenerate.
    pub degenerate_width: f64,
    /// Whether a classical member may be planned (true only when the
    /// caller installed a [`ClassicalHook`]).
    pub classical_enabled: bool,
}

impl Default for Router {
    fn default() -> Self {
        Router {
            exact_var_limit: 26,
            base_reads: 64,
            degenerate_reads: 128,
            anneal_sweeps: 384,
            backstop_reads: 256,
            backstop_sweeps: 4096,
            degenerate_width: 32.0,
            classical_enabled: false,
        }
    }
}

impl Router {
    /// The default threshold table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables (or disables) planning a classical member. Enabled
    /// automatically by [`Portfolio::with_classical_hook`].
    pub fn with_classical(mut self, enabled: bool) -> Self {
        self.classical_enabled = enabled;
        self
    }

    /// Overrides the exact-enumeration variable limit (capped at the
    /// [`ExactSolver`] hard limit of 30).
    pub fn with_exact_var_limit(mut self, n: usize) -> Self {
        assert!(n <= 30, "exact enumeration beyond 30 vars is infeasible");
        self.exact_var_limit = n;
        self
    }

    /// Routes a feature vector to a plan. Pure: equal features always
    /// produce equal plans, which is what lets CI snapshot the routing
    /// corpus.
    pub fn route(&self, f: &RoutingFeatures) -> PortfolioPlan {
        let mut members = Vec::with_capacity(2);
        let predicted;
        if self.classical_enabled && f.transformation_only {
            // Transformation constraints have a direct classical answer;
            // the annealer backstop covers encodings the baseline's
            // budget cannot finish.
            members.push(PlanMember {
                kind: MemberKind::Classical,
                reads: 0,
                sweeps: 0,
            });
            members.push(PlanMember {
                kind: MemberKind::Sa,
                reads: self.backstop_reads,
                sweeps: self.backstop_sweeps,
            });
            predicted = MemberKind::Classical;
        } else if f.num_vars <= self.exact_var_limit {
            // Below the crossover, exhaustive Gray-code enumeration beats
            // any sampler — and its answer is provably the ground state.
            members.push(PlanMember {
                kind: MemberKind::Exact,
                reads: 0,
                sweeps: 0,
            });
            members.push(PlanMember {
                kind: MemberKind::Sa,
                reads: self.backstop_reads,
                sweeps: self.backstop_sweeps,
            });
            predicted = MemberKind::Exact;
        } else {
            // Above the crossover: race SA against SQA. Degenerate
            // encodings (regex membership, wide positions) get a deeper
            // read budget for post-selection.
            let degenerate =
                f.script.regexes > 0 || f.script.avg_position_width > self.degenerate_width;
            let reads = if degenerate {
                self.degenerate_reads
            } else {
                self.base_reads
            };
            members.push(PlanMember {
                kind: MemberKind::Sa,
                reads,
                sweeps: self.anneal_sweeps,
            });
            members.push(PlanMember {
                kind: MemberKind::Sqa,
                reads: (reads / 2).max(32),
                sweeps: self.anneal_sweeps,
            });
            predicted = MemberKind::Sa;
        }
        PortfolioPlan {
            members,
            predicted,
            features: f.clone(),
        }
    }

    /// The full threshold table as JSON — snapshotted alongside the
    /// per-script plans so a threshold change shows up in CI review.
    pub fn table_json(&self) -> Json {
        Json::obj([
            ("exact_var_limit", Json::from(self.exact_var_limit as u64)),
            ("base_reads", Json::from(self.base_reads as u64)),
            ("degenerate_reads", Json::from(self.degenerate_reads as u64)),
            ("anneal_sweeps", Json::from(self.anneal_sweeps as u64)),
            ("backstop_reads", Json::from(self.backstop_reads as u64)),
            ("backstop_sweeps", Json::from(self.backstop_sweeps as u64)),
            ("degenerate_width", Json::from(self.degenerate_width)),
            ("classical_enabled", Json::from(self.classical_enabled)),
        ])
    }
}

/// Portfolio configuration: a router plus the optional classical hook.
#[derive(Clone, Default)]
pub struct Portfolio {
    router: Router,
    classical: Option<ClassicalHook>,
}

impl std::fmt::Debug for Portfolio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field("router", &self.router)
            .field("classical", &self.classical.is_some())
            .finish()
    }
}

impl Portfolio {
    /// A portfolio over the default router, no classical member.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the routing table.
    pub fn with_router(mut self, router: Router) -> Self {
        let classical = self.classical.is_some();
        self.router = router.with_classical(classical);
        self
    }

    /// Installs the classical baseline hook and enables classical
    /// members in the routing table.
    pub fn with_classical_hook(mut self, hook: ClassicalHook) -> Self {
        self.classical = Some(hook);
        self.router = self.router.clone().with_classical(true);
        self
    }

    /// The routing table in effect.
    pub fn router(&self) -> &Router {
        &self.router
    }
}

/// Everything one member produced during a race.
struct MemberRun {
    outcome: SolveOutcome,
    run_stats: SamplerRunStats,
    decoded: usize,
    valid_rank: Option<usize>,
    elapsed_us: u64,
    start_offset_us: u64,
    stopped: bool,
}

/// The result of a portfolio race, bundled for the reporting layers.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The winner's solve outcome (primary member's when none won).
    pub outcome: SolveOutcome,
    /// Which member kind won the race.
    pub winner: MemberKind,
    /// Winner's sampler counters (for the report's sampling section).
    pub run_stats: SamplerRunStats,
    /// Winner's post-selection counters: decoded states and the energy
    /// rank of the chosen valid sample.
    pub decoded: usize,
    /// Energy-order rank of the winner's chosen valid sample.
    pub valid_rank: Option<usize>,
    /// The telemetry record (schema v9 `portfolio` section).
    pub stats: PortfolioStats,
}

impl StringSolver {
    /// Computes the routing features for a constraint under this
    /// solver's encoder settings, optionally enriched with script facts.
    ///
    /// # Errors
    /// Propagates encoding failures.
    pub fn routing_features(
        &self,
        constraint: &Constraint,
        facts: Option<&ScriptFacts>,
    ) -> Result<RoutingFeatures, ConstraintError> {
        let problem = self.encode(constraint)?;
        let mut features = RoutingFeatures::from_problem(&problem, constraint);
        if let Some(facts) = facts {
            features.merge_script(facts);
        }
        Ok(features)
    }

    /// Solves a constraint by racing a routed portfolio: every plan
    /// member runs on its own scoped thread with its own stop flag and
    /// RNG stream, and the first member whose post-selected answer
    /// validates cancels the rest. See the module docs for the
    /// determinism and loss-free-cancellation guarantees.
    ///
    /// # Errors
    /// Propagates encoding failures, and — in deny-on-error mode — lint
    /// rejections, exactly like [`StringSolver::solve`].
    pub fn solve_portfolio(
        &self,
        constraint: &Constraint,
        portfolio: &Portfolio,
        facts: Option<&ScriptFacts>,
    ) -> Result<PortfolioOutcome, ConstraintError> {
        let problem = self.encode(constraint)?;
        self.deny_gate(&problem.qubo)?;
        let mut features = RoutingFeatures::from_problem(&problem, constraint);
        if let Some(facts) = facts {
            features.merge_script(facts);
        }
        let plan = portfolio.router.route(&features);
        Ok(self.race(constraint, &problem, &plan, portfolio.classical.as_ref()))
    }

    /// [`StringSolver::solve_portfolio`] with a full [`SolveReport`]: the
    /// usual compile/lint/presolve stages, then a `portfolio` stage
    /// covering the race, the winner's sampling/selection counters, and
    /// the schema-v9 `portfolio` section.
    ///
    /// # Errors
    /// Propagates encoding failures and — in deny-on-error mode — lint
    /// rejections.
    pub fn solve_portfolio_reported(
        &self,
        constraint: &Constraint,
        portfolio: &Portfolio,
        facts: Option<&ScriptFacts>,
    ) -> Result<(PortfolioOutcome, SolveReport), ConstraintError> {
        fn begin(stages: &mut Vec<StageTiming>, rec: &Recorder, label: &str) -> u64 {
            let start = rec.elapsed_us();
            stages.push(StageTiming {
                label: label.to_string(),
                start_us: start,
                dur_us: 0,
            });
            start
        }

        let rec = Recorder::new();
        let mut stages = Vec::with_capacity(4);

        let start = begin(&mut stages, &rec, "compile");
        let problem = {
            let _s = rec.span("compile");
            let _t = qsmt_trace::span("compile");
            self.encode(constraint)?
        };
        stages.last_mut().expect("pushed").dur_us = rec.elapsed_us() - start;
        let qubo_shape = problem.qubo.shape();
        rec.event(
            "encoded",
            format!("{} vars via {}", qubo_shape.num_vars, problem.name),
        );
        let compile = CompileStats {
            constraint: constraint.describe(),
            encoding: problem.name.to_string(),
            time_us: stages.last().expect("pushed").dur_us,
        };

        let start = begin(&mut stages, &rec, "lint");
        let lint_report = {
            let _s = rec.span("lint");
            let _t = qsmt_trace::span("lint");
            lint_qubo(&problem.qubo, self.lint_config())
        };
        let lint_us = rec.elapsed_us() - start;
        stages.last_mut().expect("pushed").dur_us = lint_us;
        rec.event("linted", lint_report.summary());
        self.deny_gate(&problem.qubo)?;
        let lint = Some(lint_report.to_stats(lint_us));

        let start = begin(&mut stages, &rec, "presolve");
        let presolve = {
            let _s = rec.span("presolve");
            let _t = qsmt_trace::span("presolve");
            let reduced = qsmt_qubo::presolve(&problem.qubo);
            let original = problem.qubo.num_vars();
            let fixed = reduced.num_fixed();
            PresolveStats {
                time_us: 0,
                original_vars: original,
                fixed_vars: fixed,
                reduced_vars: original - fixed,
                reduction_ratio: if original == 0 {
                    0.0
                } else {
                    fixed as f64 / original as f64
                },
            }
        };
        let presolve_us = rec.elapsed_us() - start;
        stages.last_mut().expect("pushed").dur_us = presolve_us;
        let presolve = PresolveStats {
            time_us: presolve_us,
            ..presolve
        };

        let mut features = RoutingFeatures::from_problem(&problem, constraint);
        if let Some(facts) = facts {
            features.merge_script(facts);
        }
        let plan = portfolio.router.route(&features);
        rec.event(
            "routed",
            format!(
                "{} members, predicted {}",
                plan.members.len(),
                plan.predicted.as_str()
            ),
        );

        let start = begin(&mut stages, &rec, "portfolio");
        let out = {
            let _s = rec.span("portfolio");
            let _t = qsmt_trace::span("portfolio");
            self.race(constraint, &problem, &plan, portfolio.classical.as_ref())
        };
        let race_us = rec.elapsed_us() - start;
        stages.last_mut().expect("pushed").dur_us = race_us;
        rec.event(
            "raced",
            format!("{} won in {} µs", out.winner.as_str(), out.stats.time_us),
        );

        let sampling = Self::sampler_stats(
            out.winner.sampler_name(),
            &out.outcome.samples,
            out.run_stats,
            out.stats.members[out.stats.winner_index as usize].elapsed_us,
        );
        let select = SelectStats {
            time_us: 0,
            decoded_states: out.decoded,
            valid_rank: out.valid_rank,
        };

        let total_us = rec.elapsed_us();
        let report = SolveReport {
            constraint: constraint.describe(),
            solution: out.outcome.solution.to_string(),
            energy: out.outcome.energy,
            valid: out.outcome.valid,
            total_us,
            stages,
            compile,
            qubo: qubo_shape,
            lint,
            presolve,
            embedding: None,
            sampling,
            select,
            dynamics: None,
            cache: None,
            portfolio: Some(out.stats.clone()),
            spans: rec.finish(),
        };
        Ok((out, report))
    }

    /// Runs the first-wins race for an already-routed plan.
    fn race(
        &self,
        constraint: &Constraint,
        problem: &EncodedProblem,
        plan: &PortfolioPlan,
        classical: Option<&ClassicalHook>,
    ) -> PortfolioOutcome {
        let n = plan.members.len();
        let flags: Vec<StopFlag> = (0..n).map(|_| StopFlag::new()).collect();
        let winner: Mutex<Option<usize>> = Mutex::new(None);
        let base_seed = self.base_seed();
        let race_start = Instant::now();
        let trace_base = qsmt_trace::active().then(qsmt_trace::now_us);
        // An outer cancellation (a serve job deadline) must reach the
        // members' flags too; a cheap poll loop relays it and retires
        // with the race.
        let race_done = std::sync::atomic::AtomicBool::new(false);

        let runs: Vec<MemberRun> = std::thread::scope(|scope| {
            if let Some(outer) = self.outer_stop().cloned() {
                let flags = &flags;
                let race_done = &race_done;
                scope.spawn(move || {
                    while !race_done.load(std::sync::atomic::Ordering::Acquire) {
                        if outer.is_stopped() {
                            for f in flags {
                                f.stop();
                            }
                            return;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                });
            }
            let handles: Vec<_> = plan
                .members
                .iter()
                .enumerate()
                .map(|(i, member)| {
                    let flag = flags[i].clone();
                    let flags = &flags;
                    let winner = &winner;
                    scope.spawn(move || {
                        let start_offset_us = race_start.elapsed().as_micros() as u64;
                        let t = Instant::now();
                        let (outcome, run_stats, decoded, valid_rank) = match member.kind {
                            MemberKind::Classical => {
                                let solution = classical.and_then(|hook| hook(constraint));
                                let valid =
                                    solution.as_ref().is_some_and(|s| constraint.validate(s));
                                let solution =
                                    solution.unwrap_or_else(|| Solution::Text(String::new()));
                                (
                                    SolveOutcome {
                                        problem: problem.clone(),
                                        samples: SampleSet::default(),
                                        solution,
                                        energy: f64::NAN,
                                        valid,
                                    },
                                    SamplerRunStats::default(),
                                    0,
                                    None,
                                )
                            }
                            _ => {
                                let sampler = member
                                    .sampler(member_seed(base_seed, i), Some(flag.clone()))
                                    .expect("non-classical members build samplers");
                                let (samples, run_stats) = sampler.sample_stats(&problem.qubo);
                                let (outcome, decoded, valid_rank) =
                                    self.select_counted(constraint, problem.clone(), samples);
                                (outcome, run_stats, decoded, valid_rank)
                            }
                        };
                        if outcome.valid {
                            let mut w = winner.lock().expect("winner lock");
                            if w.is_none() {
                                *w = Some(i);
                                for (j, f) in flags.iter().enumerate() {
                                    if j != i {
                                        f.stop();
                                    }
                                }
                            }
                        }
                        MemberRun {
                            outcome,
                            run_stats,
                            decoded,
                            valid_rank,
                            elapsed_us: (t.elapsed().as_micros() as u64).max(1),
                            start_offset_us,
                            stopped: flag.is_stopped(),
                        }
                    })
                })
                .collect();
            let runs = handles
                .into_iter()
                .map(|h| h.join().expect("portfolio member thread"))
                .collect();
            race_done.store(true, std::sync::atomic::Ordering::Release);
            runs
        });
        let race_us = (race_start.elapsed().as_micros() as u64).max(1);

        // Winner attribution. When nothing validated, the primary member
        // stands in so the verdict matches single-strategy routing.
        let widx = winner.into_inner().expect("winner lock").unwrap_or(0);
        let winner_kind = plan.members[widx].kind;

        // Member spans, attributed retroactively so no trace context
        // crosses a thread boundary.
        if let Some(base) = trace_base {
            for (i, run) in runs.iter().enumerate() {
                qsmt_trace::span_at(
                    &format!("portfolio:{}", plan.members[i].kind.as_str()),
                    base + run.start_offset_us,
                    run.elapsed_us,
                );
            }
        }

        let members: Vec<PortfolioMemberStats> = runs
            .iter()
            .enumerate()
            .map(|(i, run)| PortfolioMemberStats {
                member: plan.members[i].kind.as_str().to_string(),
                reads: plan.members[i].reads as u64,
                sweeps: plan.members[i].sweeps as u64,
                outcome: if i == widx && run.outcome.valid {
                    "won".to_string()
                } else if run.stopped && !run.outcome.valid {
                    "cancelled".to_string()
                } else {
                    "lost".to_string()
                },
                elapsed_us: run.elapsed_us,
                stopped: run.stopped,
                valid: run.outcome.valid,
            })
            .collect();
        let cancelled = members.iter().filter(|m| m.outcome == "cancelled").count();

        let registry = qsmt_metrics::global();
        registry.counter_add(
            "qsmt_portfolio_routing_decisions_total",
            &[("predicted", plan.predicted.as_str())],
            1.0,
        );
        registry.counter_add(
            "qsmt_portfolio_wins_total",
            &[("member", winner_kind.as_str())],
            1.0,
        );
        if cancelled > 0 {
            registry.counter_add(
                "qsmt_portfolio_cancelled_losers_total",
                &[],
                cancelled as f64,
            );
        }

        let stats = PortfolioStats {
            plan: plan.to_json(),
            predicted: plan.predicted.as_str().to_string(),
            winner: winner_kind.as_str().to_string(),
            winner_index: widx as u64,
            members,
            time_us: race_us,
        };
        let run = &runs[widx];
        PortfolioOutcome {
            outcome: run.outcome.clone(),
            winner: winner_kind,
            run_stats: run.run_stats,
            decoded: run.decoded,
            valid_rank: run.valid_rank,
            stats,
        }
    }
}

/// Registers the `qsmt_portfolio_*` metric help texts on a registry.
pub fn describe_metrics(registry: &qsmt_metrics::Registry) {
    registry.describe(
        "qsmt_portfolio_routing_decisions_total",
        "Portfolio routing decisions by predicted winner class",
    );
    registry.describe(
        "qsmt_portfolio_wins_total",
        "Portfolio races won, by member kind",
    );
    registry.describe(
        "qsmt_portfolio_cancelled_losers_total",
        "Portfolio members cancelled after another member won",
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(num_vars: usize, transformation: bool) -> RoutingFeatures {
        RoutingFeatures {
            num_vars,
            density: 0.1,
            one_hot_groups: 2,
            transformation_only: transformation,
            script: ScriptFacts::default(),
        }
    }

    #[test]
    fn routing_is_deterministic_and_size_aware() {
        let router = Router::new();
        let small = router.route(&features(20, false));
        assert_eq!(small.predicted, MemberKind::Exact);
        assert_eq!(small.members[0].kind, MemberKind::Exact);
        assert_eq!(small, router.route(&features(20, false)));
        let big = router.route(&features(200, false));
        assert_eq!(big.predicted, MemberKind::Sa);
        assert!(big
            .members
            .iter()
            .all(|m| m.kind != MemberKind::Exact && m.kind != MemberKind::Classical));
    }

    #[test]
    fn classical_members_require_opt_in() {
        let without = Router::new().route(&features(10, true));
        assert!(without
            .members
            .iter()
            .all(|m| m.kind != MemberKind::Classical));
        let with = Router::new()
            .with_classical(true)
            .route(&features(10, true));
        assert_eq!(with.members[0].kind, MemberKind::Classical);
        assert_eq!(with.predicted, MemberKind::Classical);
    }

    #[test]
    fn degenerate_scripts_get_deeper_read_budgets() {
        let router = Router::new();
        let mut f = features(200, false);
        let shallow = router.route(&f);
        f.script.regexes = 1;
        let deep = router.route(&f);
        assert!(deep.members[0].reads > shallow.members[0].reads);
    }

    #[test]
    fn member_seeds_are_distinct_streams() {
        assert_ne!(member_seed(7, 0), member_seed(7, 1));
        assert_ne!(member_seed(7, 0), member_seed(8, 0));
        assert_eq!(member_seed(7, 1), member_seed(7, 1));
    }

    #[test]
    fn exact_wins_small_models_and_cancels_the_backstop() {
        let solver = StringSolver::with_defaults().with_seed(3);
        let portfolio = Portfolio::new();
        let c = Constraint::CharAt {
            ch: 'q',
            index: 1,
            len: 3,
        };
        let out = solver.solve_portfolio(&c, &portfolio, None).unwrap();
        assert!(out.outcome.valid);
        assert_eq!(out.winner, MemberKind::Exact);
        assert_eq!(out.stats.members[0].outcome, "won");
        // The backstop annealer observed the winner's cancellation (or
        // finished losing); either way the race recorded it.
        assert_eq!(out.stats.members.len(), 2);
        assert_ne!(out.stats.members[1].outcome, "won");
    }

    #[test]
    fn winner_samples_are_bit_identical_to_a_solo_run() {
        let solver = StringSolver::with_defaults().with_seed(11);
        let portfolio = Portfolio::new();
        let c = Constraint::Palindrome { len: 6 };
        let out = solver.solve_portfolio(&c, &portfolio, None).unwrap();
        let widx = out.stats.winner_index as usize;
        let features = solver.routing_features(&c, None).unwrap();
        let plan = portfolio.router().route(&features);
        let member = plan.members[widx];
        let solo = member
            .sampler(member_seed(11, widx), None)
            .expect("winner is sampler-backed")
            .sample(&solver.encode(&c).unwrap().qubo);
        assert_eq!(out.outcome.samples, solo);
    }

    #[test]
    fn classical_hook_wins_transformation_constraints() {
        let solver = StringSolver::with_defaults().with_seed(5);
        let hook: ClassicalHook = Arc::new(|c: &Constraint| match c {
            Constraint::Reverse { input } => Some(Solution::Text(input.chars().rev().collect())),
            _ => None,
        });
        let portfolio = Portfolio::new().with_classical_hook(hook);
        let c = Constraint::Reverse {
            input: "portfolio".into(),
        };
        let out = solver.solve_portfolio(&c, &portfolio, None).unwrap();
        assert_eq!(out.winner, MemberKind::Classical);
        assert_eq!(out.outcome.solution.as_text(), Some("oiloftrop"));
        assert!(out.outcome.valid);
    }

    #[test]
    fn fallback_returns_the_primary_members_verdict() {
        // Includes over a haystack without the needle: the valid answer
        // is Index(None) == the all-zero state; under a tiny read budget
        // members may or may not validate, but the outcome always comes
        // from a plan member and the verdict survives.
        let solver = StringSolver::with_defaults().with_seed(1);
        let portfolio = Portfolio::new();
        let c = Constraint::Includes {
            haystack: "xyz".into(),
            needle: "ab".into(),
        };
        let out = solver.solve_portfolio(&c, &portfolio, None).unwrap();
        let widx = out.stats.winner_index as usize;
        assert!(widx < out.stats.members.len());
        if !out.outcome.valid {
            assert_eq!(widx, 0, "no winner must fall back to the primary");
        }
    }

    #[test]
    fn plan_json_is_stable_shape() {
        let plan = Router::new().route(&features(20, false));
        let j = plan.to_json();
        assert_eq!(
            j.get("predicted_winner").and_then(Json::as_str),
            Some("exact")
        );
        let members = j.get("members").and_then(Json::as_arr).unwrap();
        assert_eq!(
            members[0].get("member").and_then(Json::as_str),
            Some("exact")
        );
        assert!(j.get("features").and_then(|f| f.get("num_vars")).is_some());
        let table = Router::new().table_json();
        assert_eq!(
            table.get("exact_var_limit").and_then(Json::as_u64),
            Some(26)
        );
    }
}
