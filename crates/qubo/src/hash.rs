//! A small, fast, non-cryptographic hasher for integer keys.
//!
//! The quadratic terms of a [`crate::QuboModel`] are keyed by packed
//! `(i, j)` variable pairs. The default SipHash hasher is a measurable cost
//! on model-construction hot paths; this is the classic Fx multiply-rotate
//! scheme (as used by rustc), implemented locally to keep the dependency
//! closure to the offline-approved set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast `Hasher` for small integer keys. Not HashDoS-resistant; only used
/// for internal maps whose keys are program-generated variable indices.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], for use as the `S` parameter of
/// `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_hash_distinctly_in_map() {
        let mut m: HashMap<u64, u64, FxBuildHasher> = HashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn write_bytes_matches_chunked_words() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
