//! Bench S4 — the cost of the hardware path: direct annealing vs solving
//! through Chimera / Pegasus-style minor embedding, the embedding search
//! itself, and the chain-strength heuristic ablation (DESIGN.md choice
//! #4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsmt_anneal::{Sampler, SimulatedAnnealer};
use qsmt_core::Constraint;
use qsmt_qpu::{embed, ChainStrength, QpuSimulator, Topology};
use std::hint::black_box;

fn problem() -> qsmt_core::EncodedProblem {
    Constraint::Palindrome { len: 3 }.encode().expect("encodes")
}

fn bench_direct_vs_embedded(c: &mut Criterion) {
    let mut g = c.benchmark_group("qpu-path");
    g.sample_size(10);
    let p = problem();

    let sa = SimulatedAnnealer::new().with_seed(1).with_num_reads(32);
    g.bench_function("direct", |b| b.iter(|| black_box(sa.sample(&p.qubo))));

    for (name, topo) in [
        ("chimera", Topology::chimera(4, 4, 4)),
        ("pegasus-like", Topology::pegasus_like(4)),
    ] {
        let qpu = QpuSimulator::new(topo).with_seed(1).with_num_reads(32);
        g.bench_function(BenchmarkId::new("embedded", name), |b| {
            b.iter(|| black_box(qpu.sample_qubo(&p.qubo).expect("embeds")));
        });
    }
    g.finish();
}

fn bench_embedding_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("minor-embedding");
    g.sample_size(10);
    let p = problem();
    let graph = QpuSimulator::problem_graph(&p.qubo);
    for (name, topo) in [
        ("chimera", Topology::chimera(4, 4, 4)),
        ("pegasus-like", Topology::pegasus_like(4)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(embed(&graph, topo.graph(), 1, 8).expect("embeds")));
        });
    }
    g.finish();
}

fn bench_chain_strength(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain-strength");
    g.sample_size(10);
    let p = problem();
    for (name, strategy) in [
        ("fixed-2", ChainStrength::Fixed(2.0)),
        (
            "max-coeff-1.5",
            ChainStrength::MaxCoefficient { prefactor: 1.5 },
        ),
        (
            "utc-1.414",
            ChainStrength::UniformTorqueCompensation { prefactor: 1.414 },
        ),
    ] {
        let qpu = QpuSimulator::new(Topology::chimera(4, 4, 4))
            .with_seed(2)
            .with_num_reads(32)
            .with_chain_strength(strategy);
        g.bench_function(name, |b| {
            b.iter(|| black_box(qpu.sample_qubo(&p.qubo).expect("embeds")));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_direct_vs_embedded,
    bench_embedding_search,
    bench_chain_strength
);
criterion_main!(benches);
