//! End-to-end reproduction of every row of the paper's Table 1.
//!
//! Absolute strings can differ where the paper's own outputs are samples
//! from degenerate ground states (palindrome content, regex choice,
//! flexible fill); what must hold — and is asserted here — is the *shape*:
//! the constraint is satisfied and deterministic rows match exactly.

use qsmt::{Constraint, Pipeline, Start, Step, StringSolver};

fn solver() -> StringSolver {
    StringSolver::with_defaults().with_seed(1)
}

#[test]
fn row1_reverse_hello_and_replace_e_with_a() {
    let report = Pipeline::new(Start::Literal("hello".into()))
        .then(Step::Reverse)
        .then(Step::ReplaceAll { from: 'e', to: 'a' })
        .run(&solver())
        .expect("encodes");
    // Deterministic output: must match the paper exactly.
    assert_eq!(report.final_text, "ollah");
    assert!(report.all_valid());
}

#[test]
fn row2_palindrome_of_length_6() {
    let out = solver()
        .solve(&Constraint::Palindrome { len: 6 })
        .expect("encodes");
    assert!(out.valid);
    let t = out.solution.as_text().expect("text");
    assert_eq!(t.len(), 6);
    assert_eq!(t.chars().rev().collect::<String>(), t);
}

#[test]
fn row2_matrix_shape_matches_paper() {
    // The paper's excerpt shows +1 diagonals and −2 mirrored couplings.
    let p = Constraint::Palindrome { len: 6 }
        .encode_with(1.0, qsmt::BiasProfile::none())
        .expect("encodes");
    assert_eq!(p.qubo.linear(0), 1.0);
    assert_eq!(p.qubo.quadratic(0, 35), -2.0); // bit 0 of chars 0 and 5
}

#[test]
fn row3_regex_a_bc_plus_length_5() {
    let constraint = Constraint::Regex {
        pattern: "a[bc]+".into(),
        len: 5,
    };
    let out = solver().solve(&constraint).expect("encodes");
    assert!(out.valid, "post-selected answer must match the regex");
    let t = out.solution.as_text().expect("text");
    assert!(t.starts_with('a'));
    assert!(t[1..].chars().all(|c| c == 'b' || c == 'c'));
    // The paper's own sample output is one of the valid ground strings.
    assert!(constraint.validate(&qsmt::Solution::Text("abcbb".into())));
}

#[test]
fn row4_concat_hello_world_and_replace_all_l_with_x() {
    let report = Pipeline::new(Start::Literal("hello".into()))
        .then(Step::Append {
            suffix: "world".into(),
            separator: " ".into(),
        })
        .then(Step::ReplaceAll { from: 'l', to: 'x' })
        .run(&solver())
        .expect("encodes");
    assert_eq!(report.final_text, "hexxo worxd");
    assert!(report.all_valid());
}

#[test]
fn row5_length_6_with_hi_at_index_2() {
    let constraint = Constraint::IndexOfPlacement {
        substring: "hi".into(),
        index: 2,
        len: 6,
    };
    let out = solver().solve(&constraint).expect("encodes");
    assert!(out.valid);
    let t = out.solution.as_text().expect("text");
    assert_eq!(t.len(), 6);
    assert_eq!(&t[2..4], "hi");
    // The paper's sample fill is lowercase; the default bias reproduces
    // that block.
    assert!(constraint.validate(&qsmt::Solution::Text("qphiqp".into())));
}

#[test]
fn all_rows_solve_on_one_solver_instance() {
    let s = solver();
    for c in [
        Constraint::Palindrome { len: 6 },
        Constraint::Regex {
            pattern: "a[bc]+".into(),
            len: 5,
        },
        Constraint::IndexOfPlacement {
            substring: "hi".into(),
            index: 2,
            len: 6,
        },
    ] {
        let out = s.solve(&c).expect("encodes");
        assert!(out.valid, "{} must validate", c.describe());
    }
}
