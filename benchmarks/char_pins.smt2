; Extension: character pins via str.at
(set-logic QF_S)
(declare-const s String)
(assert (= (str.at s 0) "q"))
(assert (= (str.at s 2) "z"))
(assert (= (str.len s) 4))
(check-sat)
(get-model)
