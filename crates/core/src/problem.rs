//! Encoded problems: a QUBO plus the recipe for decoding its states.

use crate::encode::{bits_to_string, DecodeError, BITS_PER_CHAR};
use qsmt_qubo::QuboModel;

/// How a sampler state maps back to a domain-level answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeScheme {
    /// `7·len` bit variables decode to an ASCII string (most encoders).
    AsciiString {
        /// Number of characters in the generated string.
        len: usize,
    },
    /// One indicator variable per candidate start position (§4.4 string
    /// includes); the set variable is the chosen index.
    StartPosition {
        /// Number of candidate positions (`n − m + 1`).
        count: usize,
    },
    /// The paper's §4.6 unary length encoding over `7·chars` bit slots;
    /// decodes to the count of fully-occupied 7-bit groups.
    LengthUnary {
        /// Number of character slots.
        chars: usize,
    },
    /// An [`AsciiString`](DecodeScheme::AsciiString) encoding whose
    /// QUBO was shrunk by fixing bit variables up front (absint domain
    /// tightening, see `docs/ABSINT.md`): the sampler only sees the
    /// free bits, and decoding re-inserts the fixed ones before reading
    /// off the string.
    AsciiStringReduced {
        /// Number of characters in the generated string.
        len: usize,
        /// `(original bit index, fixed value)` pairs, sorted and unique
        /// by bit index. The free bits, in ascending original order,
        /// correspond one-to-one to the reduced state.
        fixed: Vec<(u32, u8)>,
    },
}

/// A decoded answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// A generated string.
    Text(String),
    /// A chosen start index (`None` when no indicator was set).
    Index(Option<usize>),
    /// A decoded length.
    Length(usize),
}

impl Solution {
    /// The string payload, if this is a text solution.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Solution::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The index payload, if this is an index solution.
    pub fn as_index(&self) -> Option<usize> {
        match self {
            Solution::Index(i) => *i,
            _ => None,
        }
    }
}

impl std::fmt::Display for Solution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solution::Text(s) => write!(f, "{s:?}"),
            Solution::Index(Some(i)) => write!(f, "index {i}"),
            Solution::Index(None) => write!(f, "no index"),
            Solution::Length(l) => write!(f, "length {l}"),
        }
    }
}

/// A constraint compiled to QUBO form, ready for any
/// [`qsmt_anneal::Sampler`].
#[derive(Debug, Clone)]
pub struct EncodedProblem {
    /// The QUBO model whose ground states solve the constraint.
    pub qubo: QuboModel,
    /// How to map sampler states back to answers.
    pub decode: DecodeScheme,
    /// Stable encoder name (e.g. `"string-equality"`).
    pub name: &'static str,
    /// Human-readable description of the encoded instance.
    pub description: String,
}

impl EncodedProblem {
    /// Decodes one sampler state into a domain answer.
    ///
    /// # Errors
    /// Returns [`DecodeError`] when the state is malformed for the scheme.
    pub fn decode_state(&self, state: &[u8]) -> Result<Solution, DecodeError> {
        match &self.decode {
            DecodeScheme::AsciiString { len } => {
                let expected = len * BITS_PER_CHAR;
                if state.len() != expected {
                    return Err(DecodeError::BadLength { len: state.len() });
                }
                Ok(Solution::Text(bits_to_string(state)?))
            }
            DecodeScheme::StartPosition { count } => {
                if state.len() != *count {
                    return Err(DecodeError::BadLength { len: state.len() });
                }
                if let Some(index) = state.iter().position(|&b| b > 1) {
                    return Err(DecodeError::NonBinary { index });
                }
                // Multiple set indicators decode to the first; validation
                // downstream flags the one-hot violation.
                Ok(Solution::Index(state.iter().position(|&b| b == 1)))
            }
            DecodeScheme::LengthUnary { chars } => {
                let expected = chars * BITS_PER_CHAR;
                if state.len() != expected {
                    return Err(DecodeError::BadLength { len: state.len() });
                }
                if let Some(index) = state.iter().position(|&b| b > 1) {
                    return Err(DecodeError::NonBinary { index });
                }
                let full_groups = state
                    .chunks_exact(BITS_PER_CHAR)
                    .take_while(|g| g.iter().all(|&b| b == 1))
                    .count();
                Ok(Solution::Length(full_groups))
            }
            DecodeScheme::AsciiStringReduced { len, fixed } => {
                let total = len * BITS_PER_CHAR;
                let expected = total - fixed.len();
                if state.len() != expected {
                    return Err(DecodeError::BadLength { len: state.len() });
                }
                // Lift the reduced state back to the full 7·len bits:
                // fixed bits at their original indices, free bits in
                // ascending order from the sampler state.
                let mut bits = vec![u8::MAX; total];
                for &(i, b) in fixed {
                    bits[i as usize] = b;
                }
                let mut free = state.iter();
                for slot in &mut bits {
                    if *slot == u8::MAX {
                        *slot = *free.next().expect("free bit count checked above");
                    }
                }
                Ok(Solution::Text(bits_to_string(&bits)?))
            }
        }
    }

    /// Number of binary variables in the encoded QUBO.
    pub fn num_vars(&self) -> usize {
        self.qubo.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::string_to_bits;

    fn problem(decode: DecodeScheme, vars: usize) -> EncodedProblem {
        EncodedProblem {
            qubo: QuboModel::new(vars),
            decode,
            name: "test",
            description: "test".into(),
        }
    }

    #[test]
    fn ascii_decode() {
        let p = problem(DecodeScheme::AsciiString { len: 2 }, 14);
        let state = string_to_bits("hi").unwrap();
        assert_eq!(p.decode_state(&state).unwrap(), Solution::Text("hi".into()));
    }

    #[test]
    fn ascii_decode_rejects_wrong_length() {
        let p = problem(DecodeScheme::AsciiString { len: 2 }, 14);
        assert!(p.decode_state(&[0; 7]).is_err());
    }

    #[test]
    fn start_position_decode() {
        let p = problem(DecodeScheme::StartPosition { count: 3 }, 3);
        assert_eq!(
            p.decode_state(&[0, 1, 0]).unwrap(),
            Solution::Index(Some(1))
        );
        assert_eq!(p.decode_state(&[0, 0, 0]).unwrap(), Solution::Index(None));
        // multiple indicators: first wins at decode level
        assert_eq!(
            p.decode_state(&[0, 1, 1]).unwrap(),
            Solution::Index(Some(1))
        );
    }

    #[test]
    fn length_unary_decode() {
        let p = problem(DecodeScheme::LengthUnary { chars: 3 }, 21);
        let mut state = vec![1u8; 14];
        state.extend(vec![0u8; 7]);
        assert_eq!(p.decode_state(&state).unwrap(), Solution::Length(2));
        // a partial group does not count
        let mut partial = vec![1u8; 6];
        partial.push(0);
        partial.extend(vec![0u8; 14]);
        assert_eq!(p.decode_state(&partial).unwrap(), Solution::Length(0));
    }

    #[test]
    fn reduced_ascii_decode_reinserts_fixed_bits() {
        // "hi" with position 0 fixed to 'h': bits 0..7 fixed, free
        // state carries only the 7 bits of 'i'.
        let full = string_to_bits("hi").unwrap();
        let fixed: Vec<(u32, u8)> = full[..7]
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as u32, b))
            .collect();
        let p = problem(DecodeScheme::AsciiStringReduced { len: 2, fixed }, 7);
        assert_eq!(
            p.decode_state(&full[7..]).unwrap(),
            Solution::Text("hi".into())
        );
        assert!(p.decode_state(&full).is_err(), "full state is too long");
    }

    #[test]
    fn solution_accessors() {
        assert_eq!(Solution::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Solution::Index(Some(4)).as_index(), Some(4));
        assert_eq!(Solution::Text("x".into()).as_index(), None);
        assert_eq!(format!("{}", Solution::Index(None)), "no index");
    }
}
