//! Model preprocessing: variable fixing, reduction, and normalization.
//!
//! QUBO preprocessing (Lewis & Glover, the paper's reference [37]) shrinks
//! models before sampling. Two standard passes are provided:
//!
//! * **variable fixing** — substitute a known value for a variable and
//!   fold its terms into the remaining model;
//! * **persistency reduction** — variables whose linear term dominates
//!   the sum of their coupling magnitudes take a forced value in *every*
//!   ground state and can be fixed automatically;
//! * **normalization** — rescale coefficients into a target range, as
//!   required before programming physical hardware.

use crate::{QuboModel, Var};

/// The result of fixing variables: a smaller model plus the mapping back
/// to the original variable space.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    /// The reduced model over the surviving variables.
    pub model: QuboModel,
    /// For each original variable: `Some(value)` if fixed, `None` if free.
    pub fixed: Vec<Option<u8>>,
    /// Original index of each surviving variable (reduced → original).
    pub kept: Vec<Var>,
}

impl ReducedModel {
    /// Lifts a reduced-space state back to the original variable space.
    ///
    /// # Panics
    /// Panics when the state length does not match the reduced model.
    pub fn lift(&self, reduced_state: &[u8]) -> Vec<u8> {
        assert_eq!(
            reduced_state.len(),
            self.kept.len(),
            "reduced state length mismatch"
        );
        let mut full: Vec<u8> = self.fixed.iter().map(|f| f.unwrap_or(0)).collect();
        for (r, &orig) in self.kept.iter().enumerate() {
            full[orig as usize] = reduced_state[r];
        }
        full
    }

    /// Number of variables eliminated.
    pub fn num_fixed(&self) -> usize {
        self.fixed.iter().filter(|f| f.is_some()).count()
    }
}

/// Fixes the given `(variable, value)` assignments, returning the reduced
/// model. Energies are preserved: for any completion of the free
/// variables, `reduced.energy(free) == original.energy(lifted)`.
///
/// # Panics
/// Panics on out-of-range variables, non-binary values, or duplicates.
pub fn fix_variables(model: &QuboModel, assignments: &[(Var, u8)]) -> ReducedModel {
    let n = model.num_vars();
    let mut fixed: Vec<Option<u8>> = vec![None; n];
    for &(v, val) in assignments {
        assert!((v as usize) < n, "variable {v} out of range");
        assert!(val <= 1, "assignment must be binary");
        assert!(fixed[v as usize].is_none(), "variable {v} fixed twice");
        fixed[v as usize] = Some(val);
    }
    let kept: Vec<Var> = (0..n as Var)
        .filter(|&v| fixed[v as usize].is_none())
        .collect();
    let mut new_index = vec![u32::MAX; n];
    for (r, &orig) in kept.iter().enumerate() {
        new_index[orig as usize] = r as u32;
    }
    let mut reduced = QuboModel::new(kept.len());
    reduced.add_offset(model.offset());
    for (i, &q) in model.linear_terms().iter().enumerate() {
        if q == 0.0 {
            continue;
        }
        match fixed[i] {
            Some(1) => reduced.add_offset(q),
            Some(_) => {}
            None => reduced.add_linear(new_index[i], q),
        }
    }
    for (i, j, q) in model.quadratic_iter() {
        match (fixed[i as usize], fixed[j as usize]) {
            (Some(1), Some(1)) => reduced.add_offset(q),
            (Some(_), Some(_)) => {}
            (Some(1), None) => reduced.add_linear(new_index[j as usize], q),
            (None, Some(1)) => reduced.add_linear(new_index[i as usize], q),
            (Some(_), None) | (None, Some(_)) => {}
            (None, None) => reduced.add_quadratic(new_index[i as usize], new_index[j as usize], q),
        }
    }
    ReducedModel {
        model: reduced,
        fixed,
        kept,
    }
}

/// Persistency pass: finds variables whose optimal value is forced
/// regardless of the rest of the model.
///
/// If `q_ii + Σ_j min(0, q_ij) > 0`, setting `x_i = 1` can never lower the
/// energy, so `x_i = 0` in every ground state; symmetrically, if
/// `q_ii + Σ_j max(0, q_ij) < 0`, then `x_i = 1`. Returns the forced
/// assignments (possibly empty).
pub fn persistent_assignments(model: &QuboModel) -> Vec<(Var, u8)> {
    let n = model.num_vars();
    let mut neg_sum = vec![0.0f64; n];
    let mut pos_sum = vec![0.0f64; n];
    for (i, j, q) in model.quadratic_iter() {
        if q < 0.0 {
            neg_sum[i as usize] += q;
            neg_sum[j as usize] += q;
        } else {
            pos_sum[i as usize] += q;
            pos_sum[j as usize] += q;
        }
    }
    let mut out = Vec::new();
    for v in 0..n {
        let lin = model.linear(v as Var);
        if lin + neg_sum[v] > 0.0 {
            out.push((v as Var, 0u8));
        } else if lin + pos_sum[v] < 0.0 {
            out.push((v as Var, 1u8));
        }
    }
    out
}

/// Applies the persistency pass repeatedly until a fixed point, returning
/// the fully reduced model.
pub fn presolve(model: &QuboModel) -> ReducedModel {
    let mut current = ReducedModel {
        model: model.clone(),
        fixed: vec![None; model.num_vars()],
        kept: (0..model.num_vars() as Var).collect(),
    };
    loop {
        let forced = persistent_assignments(&current.model);
        if forced.is_empty() {
            return current;
        }
        let next = fix_variables(&current.model, &forced);
        // Compose the mappings.
        let mut fixed = current.fixed.clone();
        for (r, &orig) in current.kept.iter().enumerate() {
            if let Some(v) = next.fixed[r] {
                fixed[orig as usize] = Some(v);
            }
        }
        let kept: Vec<Var> = next
            .kept
            .iter()
            .map(|&r| current.kept[r as usize])
            .collect();
        current = ReducedModel {
            model: next.model,
            fixed,
            kept,
        };
    }
}

/// Rescales the model so the largest absolute coefficient equals
/// `target` (hardware `h`/`J` range programming). Returns the scale
/// factor applied (1.0 for all-zero models). Ground states are unchanged;
/// energies scale by the returned factor.
pub fn normalize(model: &mut QuboModel, target: f64) -> f64 {
    assert!(target > 0.0, "target range must be positive");
    let max = model.max_abs_coefficient();
    if max == 0.0 {
        return 1.0;
    }
    let factor = target / max;
    model.scale(factor);
    factor
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QuboModel {
        // E = -2 x0 + x1 + 3 x0 x1 - x1 x2
        let mut m = QuboModel::new(3);
        m.add_linear(0, -2.0);
        m.add_linear(1, 1.0);
        m.add_quadratic(0, 1, 3.0);
        m.add_quadratic(1, 2, -1.0);
        m
    }

    #[test]
    fn fixing_preserves_energies() {
        let m = sample();
        let red = fix_variables(&m, &[(0, 1)]);
        assert_eq!(red.model.num_vars(), 2);
        for bits in 0u32..4 {
            let free: Vec<u8> = (0..2).map(|i| ((bits >> i) & 1) as u8).collect();
            let full = red.lift(&free);
            assert_eq!(full[0], 1);
            assert!((red.model.energy(&free) - m.energy(&full)).abs() < 1e-12);
        }
    }

    #[test]
    fn fixing_to_zero_drops_terms() {
        let m = sample();
        let red = fix_variables(&m, &[(1, 0)]);
        // With x1 = 0 the couplings disappear entirely.
        assert_eq!(red.model.num_interactions(), 0);
        assert_eq!(red.model.linear(0), -2.0);
    }

    #[test]
    fn lift_restores_original_indexing() {
        let m = sample();
        let red = fix_variables(&m, &[(1, 1)]);
        let full = red.lift(&[1, 0]); // x0 = 1, x2 = 0
        assert_eq!(full, vec![1, 1, 0]);
        assert_eq!(red.num_fixed(), 1);
    }

    #[test]
    fn persistency_finds_forced_variables() {
        // x0: lin 5, worst-case negative couplings 0 ⇒ forced 0.
        // x1: lin -5, positive couplings 0 ⇒ forced 1.
        let mut m = QuboModel::new(3);
        m.add_linear(0, 5.0);
        m.add_linear(1, -5.0);
        m.add_quadratic(0, 2, 1.0);
        m.add_quadratic(1, 2, -1.0);
        let forced = persistent_assignments(&m);
        assert!(forced.contains(&(0, 0)));
        assert!(forced.contains(&(1, 1)));
    }

    #[test]
    fn presolve_reaches_fixed_point_and_preserves_ground() {
        let m = sample();
        let red = presolve(&m);
        let (ground, states) = m.brute_force_ground_states();
        // Complete the reduced model exhaustively and compare.
        let k = red.model.num_vars();
        let mut best = f64::INFINITY;
        let mut best_state = Vec::new();
        for bits in 0u32..(1 << k) {
            let free: Vec<u8> = (0..k).map(|i| ((bits >> i) & 1) as u8).collect();
            let e = red.model.energy(&free);
            if e < best {
                best = e;
                best_state = red.lift(&free);
            }
        }
        assert!((best - ground).abs() < 1e-12);
        assert!(states.contains(&best_state));
    }

    #[test]
    fn presolve_fully_solves_diagonal_models() {
        // The paper's equality encodings are diagonal-only: presolve must
        // fix every variable.
        let mut m = QuboModel::new(4);
        for (i, v) in [(0u32, -1.0), (1, 1.0), (2, -1.0), (3, 1.0)] {
            m.add_linear(i, v);
        }
        let red = presolve(&m);
        assert_eq!(red.model.num_vars(), 0);
        assert_eq!(red.lift(&[]), vec![1, 0, 1, 0]);
    }

    #[test]
    fn normalize_hits_target_range() {
        let mut m = sample();
        let factor = normalize(&mut m, 1.0);
        assert!((m.max_abs_coefficient() - 1.0).abs() < 1e-12);
        assert!((factor - 1.0 / 3.0).abs() < 1e-12);
        let mut zero = QuboModel::new(2);
        assert_eq!(normalize(&mut zero, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "fixed twice")]
    fn duplicate_fix_panics() {
        fix_variables(&sample(), &[(0, 1), (0, 0)]);
    }
}
