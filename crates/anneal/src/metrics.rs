//! Solver-quality metrics: ground-state probability and time-to-solution.
//!
//! The annealing literature compares samplers by **TTS(q)** — the expected
//! wall-clock needed to observe the ground state at least once with
//! confidence `q`, given a per-read success probability `p` and per-read
//! time `t`:
//!
//! ```text
//! TTS(q) = t · ⌈ ln(1 − q) / ln(1 − p) ⌉
//! ```
//!
//! These helpers turn a [`crate::SampleSet`] plus a known (or exactly
//! computed) ground energy into that metric, used by the sampler benches
//! and EXPERIMENTS.md.

use crate::SampleSet;
use std::time::Duration;

/// Per-read ground-state success probability against a known ground
/// energy (within `tol`). Returns 0.0 for empty sets and when the ground
/// state was never observed.
pub fn ground_state_probability(set: &SampleSet, ground_energy: f64, tol: f64) -> f64 {
    let total = set.total_reads();
    if total == 0 {
        return 0.0;
    }
    let hits: u32 = set
        .iter()
        .filter(|s| s.energy <= ground_energy + tol)
        .map(|s| s.occurrences)
        .sum();
    hits as f64 / total as f64
}

/// Number of repetitions needed to reach confidence `q` given per-read
/// success probability `p`.
///
/// Edge cases: `p ≤ 0` → `None` (never succeeds); `p ≥ 1` → `Some(1)`.
///
/// # Panics
/// Panics unless `0 < q < 1`.
pub fn repetitions_to_confidence(p: f64, q: f64) -> Option<u64> {
    assert!(q > 0.0 && q < 1.0, "confidence must be in (0, 1)");
    if p <= 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(1);
    }
    let reps = ((1.0 - q).ln() / (1.0 - p).ln()).ceil();
    Some(reps.max(1.0) as u64)
}

/// Time-to-solution at confidence `q` (`None` when the sampler never hit
/// the ground state).
pub fn time_to_solution(
    set: &SampleSet,
    ground_energy: f64,
    tol: f64,
    time_per_read: Duration,
    q: f64,
) -> Option<Duration> {
    let p = ground_state_probability(set, ground_energy, tol);
    let reps = repetitions_to_confidence(p, q)?;
    Some(time_per_read.saturating_mul(reps.min(u32::MAX as u64) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_with(hits: usize, misses: usize) -> SampleSet {
        let mut reads = Vec::new();
        for _ in 0..hits {
            reads.push((vec![1u8], 0.0));
        }
        for _ in 0..misses {
            reads.push((vec![0u8], 5.0));
        }
        SampleSet::from_reads(reads)
    }

    #[test]
    fn probability_counts_reads() {
        let set = set_with(3, 1);
        assert!((ground_state_probability(&set, 0.0, 1e-9) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn probability_zero_when_ground_never_seen() {
        let set = set_with(0, 4);
        assert_eq!(ground_state_probability(&set, -1.0, 1e-9), 0.0);
    }

    #[test]
    fn repetitions_standard_r99() {
        // p = 0.5 → ln(0.01)/ln(0.5) ≈ 6.64 → 7 repetitions.
        assert_eq!(repetitions_to_confidence(0.5, 0.99), Some(7));
        assert_eq!(repetitions_to_confidence(1.0, 0.99), Some(1));
        assert_eq!(repetitions_to_confidence(0.0, 0.99), None);
    }

    #[test]
    fn repetitions_monotone_in_p() {
        let r_low = repetitions_to_confidence(0.1, 0.99).unwrap();
        let r_high = repetitions_to_confidence(0.9, 0.99).unwrap();
        assert!(r_low > r_high);
    }

    #[test]
    fn tts_combines_reps_and_read_time() {
        let set = set_with(2, 2); // p = 0.5 → 7 reps
        let tts = time_to_solution(&set, 0.0, 1e-9, Duration::from_millis(10), 0.99).unwrap();
        assert_eq!(tts, Duration::from_millis(70));
        let never = set_with(0, 4);
        assert!(time_to_solution(&never, -1.0, 1e-9, Duration::from_millis(1), 0.99).is_none());
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        repetitions_to_confidence(0.5, 1.0);
    }
}
