; Table 1 row 2: a palindrome of length 6
(set-logic QF_S)
(declare-const p String)
(assert (= p (str.rev p)))
(assert (= (str.len p) 6))
(check-sat)
(get-model)
