//! # qsmt-bench — workloads and harnesses for every table and figure
//!
//! Binaries:
//! * `table1` — regenerates the paper's Table 1 (constraint, matrix
//!   excerpt, output) — `cargo run -p qsmt-bench --bin table1`
//! * `figure1` — prints the Figure 1 pipeline trace for a sample
//!   constraint — `cargo run -p qsmt-bench --bin figure1`
//!
//! Criterion benches (`cargo bench -p qsmt-bench`): `scaling`, `samplers`,
//! `parallel`, `embedding`, `crossover` — see DESIGN.md's experiment
//! index.

#![warn(missing_docs)]

use qsmt_core::Constraint;

/// The paper's five Table 1 workloads, in row order.
pub fn table1_generation_rows() -> Vec<(&'static str, Constraint)> {
    vec![
        (
            "Generate a palindrome with length 6",
            Constraint::Palindrome { len: 6 },
        ),
        (
            "Generate the regex a[bc]+ with length 5",
            Constraint::Regex {
                pattern: "a[bc]+".into(),
                len: 5,
            },
        ),
        (
            "Generate a string of length 6 that contains the substring 'hi' at index 2",
            Constraint::IndexOfPlacement {
                substring: "hi".into(),
                index: 2,
                len: 6,
            },
        ),
    ]
}

/// Equality constraints of growing size for the scaling bench.
pub fn sized_equality(n: usize) -> Constraint {
    let target: String = (0..n).map(|i| (b'a' + (i % 26) as u8) as char).collect();
    Constraint::Equality { target }
}

/// Palindrome constraints of growing size for the scaling bench.
pub fn sized_palindrome(n: usize) -> Constraint {
    Constraint::Palindrome { len: n }
}

/// Substring-containment workloads for the crossover bench.
pub fn crossover_case(len: usize) -> Constraint {
    Constraint::SubstringMatch {
        substring: "zz".into(),
        len,
    }
}
