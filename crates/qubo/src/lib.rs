//! # qsmt-qubo — QUBO and Ising model substrate
//!
//! This crate provides the optimization-model substrate for the quantum
//! string SMT solver: a sparse [`QuboModel`] (Quadratic Unconstrained Binary
//! Optimization), a dense matrix view for inspection and pretty-printing in
//! the style of the paper's Table 1, the equivalent [`IsingModel`] with
//! lossless conversions in both directions, penalty-function builders, and a
//! compiled CSR adjacency form ([`CompiledQubo`]) plus the incremental
//! local-field kernels ([`FlipKernel`], [`IsingFlipKernel`], and the
//! bit-sliced 64-replica [`MultiReplicaKernel`]) that samplers use for O(1)
//! single-flip energy deltas (see `docs/PERFORMANCE.md`).
//!
//! ## Model
//!
//! A QUBO instance over binary variables `x ∈ {0,1}^n` is the energy
//!
//! ```text
//! E(x) = Σ_i q_ii·x_i  +  Σ_{i<j} q_ij·x_i·x_j  +  offset
//! ```
//!
//! Minimizing `E` over all assignments yields the model's *ground states*.
//! The string-theory encoders in `qsmt-core` construct these models so that
//! ground states decode to strings satisfying the encoded constraint.
//!
//! ## Example
//!
//! ```
//! use qsmt_qubo::QuboModel;
//!
//! // minimize  -x0 + x1 + 2·x0·x1   → ground state x = (1, 0), energy -1
//! let mut m = QuboModel::new(2);
//! m.add_linear(0, -1.0);
//! m.add_linear(1, 1.0);
//! m.add_quadratic(0, 1, 2.0);
//! assert_eq!(m.energy(&[1, 0]), -1.0);
//! assert_eq!(m.energy(&[1, 1]), 2.0);
//! ```

#![warn(missing_docs)]

mod adjacency;
mod builder;
mod dense;
pub mod fingerprint;
mod hash;
mod ising;
mod ising_compiled;
pub mod kernel;
mod model;
pub mod multi_kernel;
mod presolve;
mod serialize;
mod stop;

pub use adjacency::CompiledQubo;
pub use builder::PenaltyBuilder;
pub use dense::DenseQubo;
pub use fingerprint::ModelFingerprint;
pub use hash::{FxBuildHasher, FxHasher};
pub use ising::{spins_to_state, state_to_spins, IsingModel};
pub use ising_compiled::CompiledIsing;
pub use kernel::{FlipKernel, IsingFlipKernel, KernelWatermark};
pub use model::{QuboModel, Var};
pub use multi_kernel::{MultiReplicaKernel, LANES};
pub use presolve::{fix_variables, normalize, persistent_assignments, presolve, ReducedModel};
pub use serialize::{from_qbsolv, to_qbsolv, FormatError};
pub use stop::StopFlag;

/// A binary assignment: one `0`/`1` entry per variable.
///
/// Stored as bytes rather than `bool`s so samplers can use arithmetic on the
/// raw values (`1 - 2*x`) without branching.
pub type State = Vec<u8>;

/// Asserts (in debug builds) that every entry of a state is 0 or 1.
#[inline]
pub fn debug_check_state(state: &[u8]) {
    debug_assert!(
        state.iter().all(|&b| b <= 1),
        "state contains a non-binary entry"
    );
}
