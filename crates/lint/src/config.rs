//! Linter configuration: thresholds and the QPU precision model.

use qsmt_qpu::ChainStrength;

/// A model of the analog precision available when programming a QPU.
///
/// Annealers expose each coupler/field as a fixed analog range programmed
/// through a DAC with limited effective resolution; coefficients outside
/// the range must be rescaled in, and coefficients much smaller than one
/// quantization step are effectively erased (Bian et al. call this the
/// dominant practical failure mode for SAT penalties). The defaults below
/// mirror a D-Wave 2000Q-like device: couplers in `[-1, 1]`, fields in
/// `[-2, 2]`, and roughly 8 bits of effective resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionModel {
    /// Display name used in diagnostics.
    pub name: &'static str,
    /// Programmable coupler range `[min, max]`.
    pub coupler_range: (f64, f64),
    /// Programmable field (linear bias) range `[min, max]`.
    pub field_range: (f64, f64),
    /// Effective DAC resolution in bits over the coupler range.
    pub resolution_bits: u32,
}

impl PrecisionModel {
    /// D-Wave 2000Q-like defaults (Chimera-era hardware).
    pub fn chimera_2000q() -> Self {
        PrecisionModel {
            name: "chimera-2000q",
            coupler_range: (-1.0, 1.0),
            field_range: (-2.0, 2.0),
            resolution_bits: 8,
        }
    }

    /// Advantage-like defaults (Pegasus-era hardware): wider coupler
    /// range, same effective resolution.
    pub fn pegasus_advantage() -> Self {
        PrecisionModel {
            name: "pegasus-advantage",
            coupler_range: (-2.0, 1.0),
            field_range: (-4.0, 4.0),
            resolution_bits: 8,
        }
    }

    /// Largest programmable coupler magnitude.
    pub fn coupler_limit(&self) -> f64 {
        self.coupler_range.0.abs().max(self.coupler_range.1.abs())
    }

    /// Size of one quantization step across the coupler range.
    pub fn quantization_step(&self) -> f64 {
        let span = self.coupler_range.1 - self.coupler_range.0;
        span / (f64::from(2u32.pow(self.resolution_bits)) - 1.0)
    }

    /// The representable dynamic range: ratio between the largest
    /// programmable magnitude and one quantization step.
    pub fn dynamic_range(&self) -> f64 {
        self.coupler_limit() / self.quantization_step()
    }
}

impl Default for PrecisionModel {
    fn default() -> Self {
        PrecisionModel::chimera_2000q()
    }
}

/// Tunable knobs for a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Hardware precision model for the conditioning pass.
    pub precision: PrecisionModel,
    /// Chain-strength heuristic whose output is checked for feasibility.
    pub chain_strength: ChainStrength,
    /// Largest inferred group validated by exact subset enumeration;
    /// larger groups fall back to a greedy counterexample search.
    pub max_exact_group: usize,
    /// Cap on variables listed per diagnostic (messages stay readable;
    /// the full count is always in the message text).
    pub max_listed_vars: usize,
    /// Absolute tolerance for energy comparisons.
    pub tolerance: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            precision: PrecisionModel::default(),
            chain_strength: ChainStrength::default(),
            max_exact_group: 16,
            max_listed_vars: 8,
            tolerance: 1e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_step_matches_resolution() {
        let p = PrecisionModel::chimera_2000q();
        let step = p.quantization_step();
        assert!((step - 2.0 / 255.0).abs() < 1e-12);
        assert!((p.dynamic_range() - 127.5).abs() < 1e-9);
    }

    #[test]
    fn pegasus_has_wider_couplers() {
        let p = PrecisionModel::pegasus_advantage();
        assert!((p.coupler_limit() - 2.0).abs() < 1e-12);
    }
}
