//! # qsmt-telemetry — solver observability
//!
//! Dependency-free observability layer for the qsmt workspace: a span/event
//! [`Recorder`] for tracing a solve, typed per-stage statistics
//! ([`QuboShape`], [`SamplerStats`], [`EmbeddingStats`], …) aggregated into
//! a [`SolveReport`], and a minimal [`Json`] value type so reports can be
//! written (and read back) without external crates.
//!
//! The crate is a leaf: `qsmt-qubo`, `qsmt-anneal`, `qsmt-qpu`, and
//! `qsmt-core` all depend on it and *push* their numbers in, which keeps
//! instrumentation types out of the hot-path crates' public APIs.
//!
//! Every field emitted by these types is documented in
//! `docs/OBSERVABILITY.md`.
//!
//! ```
//! use qsmt_telemetry::{Json, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _span = rec.span("compile");
//! }
//! let spans = rec.finish();
//! let doc = Json::Arr(spans.iter().map(|s| s.to_json()).collect());
//! assert!(doc.to_string().contains("\"compile\""));
//! ```

#![warn(missing_docs)]

pub mod dynamics;
pub mod json;
pub mod recorder;
pub mod report;

pub use dynamics::{
    BetaAcceptance, DynamicsStats, EssPoint, HistogramSummary, StallVerdict, SwapAcceptance,
    TimeToTarget, TracePoint,
};
pub use json::{parse, Json, JsonParseError};
pub use recorder::{Recorder, SpanGuard, SpanRecord, TraceDisplay};
pub use report::{
    AbsintStats, CacheStats, CompileStats, EmbeddingStats, GoalKind, GoalReport, LintStats,
    PortfolioMemberStats, PortfolioStats, PresolveStats, QuboShape, RunReport, SamplerStats,
    SelectStats, SolveReport, StageTiming,
};
