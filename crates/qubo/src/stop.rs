//! Cooperative cancellation for long-running sweep loops.
//!
//! A [`StopFlag`] is a cheap, clonable handle over a shared atomic bit.
//! The owner of a deadline (a solve service worker, a signal handler, a
//! test harness) calls [`StopFlag::stop`]; sweep loops driving a
//! [`FlipKernel`](crate::FlipKernel) poll [`StopFlag::is_stopped`] at
//! sweep granularity and wind down early, returning the best states found
//! so far. Polling an un-tripped flag is a single relaxed atomic load —
//! it never touches a sampler's RNG stream, so results are bit-identical
//! to an un-flagged run until the moment the flag fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation token: set once, observed by many sweep loops.
///
/// ```
/// use qsmt_qubo::StopFlag;
///
/// let flag = StopFlag::new();
/// let observer = flag.clone(); // same underlying bit
/// assert!(!observer.is_stopped());
/// flag.stop();
/// assert!(observer.is_stopped());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// Creates an un-tripped flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent; every clone observes the stop.
    pub fn stop(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once any clone has called [`StopFlag::stop`].
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_bit() {
        let a = StopFlag::new();
        let b = a.clone();
        assert!(!a.is_stopped() && !b.is_stopped());
        b.stop();
        assert!(a.is_stopped() && b.is_stopped());
    }

    #[test]
    fn stop_is_idempotent_and_visible_across_threads() {
        let flag = StopFlag::new();
        let trip = flag.clone();
        let t = std::thread::spawn(move || {
            trip.stop();
            trip.stop();
        });
        t.join().unwrap();
        assert!(flag.is_stopped());
    }
}
