; re.range and re.allchar
(set-logic QF_S)
(declare-const s String)
(assert (str.in_re s (re.++ (re.range "a" "f") re.allchar (str.to_re "x"))))
(assert (= (str.len s) 3))
(check-sat)
(get-model)
