//! Bench S6 — bit-sliced multi-replica sweeps vs the scalar flip kernel
//! on the dense n=192 penalty workload (docs/PERFORMANCE.md §bit-sliced).
//!
//! One `sweep_word` advances all 64 replica lanes through a full variable
//! pass, so the interesting number is *effective* proposals per second:
//! the 64-lane arm does 64× the proposals of the scalar arm per timed
//! iteration. Criterion reports raw wall-clock per sweep; the `qsmt
//! bench` harness turns the same workload into the gated
//! `replica_scaling.flips_speedup` headline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsmt_anneal::{multi, read_seed, AcceptanceTable, BetaSchedule};
use qsmt_qubo::{CompiledQubo, FlipKernel, MultiReplicaKernel, QuboModel, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 192;
const SEED: u64 = 1;

/// Coupling-heavy random penalty model — same regime as the root
/// harness's `dense_penalty_model`: ~25% edge density puts the CSR
/// neighbor walk, not the RNG, on the critical path.
fn dense_model() -> QuboModel {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut m = QuboModel::new(N);
    for i in 0..N as Var {
        m.add_linear(i, rng.gen_range(-1.0..1.0));
    }
    for i in 0..N as Var {
        for j in (i + 1)..N as Var {
            if rng.gen_bool(0.25) {
                m.add_quadratic(i, j, rng.gen_range(-1.0..1.0));
            }
        }
    }
    m
}

/// Random initial states, one per replica lane, on independent
/// `read_seed` streams — the exact seeding the SA block path uses.
fn lane_states(compiled: &CompiledQubo, lanes: usize) -> (Vec<Vec<u8>>, Vec<SmallRng>) {
    let mut rngs: Vec<SmallRng> = (0..lanes)
        .map(|r| SmallRng::seed_from_u64(read_seed(SEED, r as u64)))
        .collect();
    let states = rngs
        .iter_mut()
        .map(|rng| {
            (0..compiled.num_vars())
                .map(|_| u8::from(rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    (states, rngs)
}

fn bench_multi_replica(c: &mut Criterion) {
    let compiled = CompiledQubo::compile(&dense_model());
    let betas = BetaSchedule::auto(&compiled, 16).realize();
    let tables: Vec<AcceptanceTable> = betas.iter().map(|&b| AcceptanceTable::new(b)).collect();

    let mut g = c.benchmark_group("multi_replica_dense192");
    // One timed iteration = a full β pass (16 sweeps over 192 vars).
    for lanes in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("bit_sliced", lanes),
            &lanes,
            |b, &lanes| {
                let (states, mut rngs) = lane_states(&compiled, lanes);
                let mut kernel = MultiReplicaKernel::new(&compiled, &states);
                b.iter(|| {
                    let mut accepted = 0u64;
                    for table in &tables {
                        accepted += multi::sweep_word(&mut kernel, &compiled, table, &mut rngs);
                    }
                    black_box(accepted)
                });
            },
        );
    }
    // Scalar reference: 64 sequential FlipKernel walks, the work the
    // 64-lane word replaces.
    g.bench_function("scalar_x64", |b| {
        let (states, mut rngs) = lane_states(&compiled, 64);
        let mut kernels: Vec<FlipKernel> = states
            .iter()
            .map(|s| FlipKernel::new(&compiled, s.clone()))
            .collect();
        b.iter(|| {
            let mut accepted = 0u64;
            for table in &tables {
                for (kernel, rng) in kernels.iter_mut().zip(rngs.iter_mut()) {
                    for i in 0..compiled.num_vars() {
                        let delta = kernel.delta(i as Var);
                        if table.accept(delta, rng) {
                            kernel.flip(&compiled, i as Var);
                            accepted += 1;
                        }
                    }
                }
            }
            black_box(accepted)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_multi_replica);
criterion_main!(benches);
