//! Spin-reversal (gauge) transforms — the standard QPU error-mitigation
//! technique.
//!
//! A gauge `g ∈ {±1}ⁿ` maps the Ising Hamiltonian to an equivalent one
//! (`h'_i = g_i·h_i`, `J'_ij = g_i·g_j·J_ij`) whose states relate by
//! `s'_i = g_i·s_i` with identical energies. Programming the *same*
//! problem under several gauges and un-gauging the samples averages out
//! systematic per-qubit control biases: an error that always pulls qubit
//! `i` toward `+1` helps under one gauge and hurts under another.
//!
//! In QUBO space the state transform is a per-bit XOR: where `g_i = −1`,
//! `x'_i = 1 − x_i`.

use qsmt_qubo::{IsingModel, QuboModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws a uniformly random gauge over `n` qubits.
pub fn random_gauge(n: usize, seed: u64) -> Vec<i8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
        .collect()
}

/// The identity gauge (no transformation).
pub fn identity_gauge(n: usize) -> Vec<i8> {
    vec![1; n]
}

/// Applies a gauge to a QUBO model (via the exact Ising equivalence),
/// returning the transformed model. For any state `x` and its gauged
/// image [`gauge_state`]`(x, g)`, the energies agree.
///
/// # Panics
/// Panics if the gauge length does not match the model.
pub fn apply_gauge(model: &QuboModel, gauge: &[i8]) -> QuboModel {
    assert_eq!(
        gauge.len(),
        model.num_vars(),
        "gauge length must match the variable count"
    );
    assert!(
        gauge.iter().all(|&g| g == 1 || g == -1),
        "gauge entries must be ±1"
    );
    let ising = IsingModel::from_qubo(model);
    let mut gauged = IsingModel::new(ising.num_spins());
    gauged.add_offset(ising.offset());
    for i in 0..ising.num_spins() as u32 {
        let h = ising.field(i);
        if h != 0.0 {
            gauged.add_field(i, h * gauge[i as usize] as f64);
        }
    }
    for (i, j, v) in ising.coupling_iter() {
        gauged.add_coupling(i, j, v * (gauge[i as usize] * gauge[j as usize]) as f64);
    }
    gauged.to_qubo()
}

/// Transforms a binary state between the original and gauged problems
/// (the map is an involution: applying it twice is the identity).
pub fn gauge_state(state: &[u8], gauge: &[i8]) -> Vec<u8> {
    assert_eq!(state.len(), gauge.len(), "state/gauge length mismatch");
    state
        .iter()
        .zip(gauge)
        .map(|(&x, &g)| if g == 1 { x } else { 1 - x })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = QuboModel::new(n);
        for i in 0..n as u32 {
            m.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if rng.gen_bool(0.5) {
                    m.add_quadratic(i, j, rng.gen_range(-2.0..2.0));
                }
            }
        }
        m.add_offset(0.5);
        m
    }

    #[test]
    fn gauged_energies_match_on_all_states() {
        for seed in 0..5 {
            let m = random_model(6, seed);
            let g = random_gauge(6, seed + 100);
            let gauged = apply_gauge(&m, &g);
            for bits in 0u32..(1 << 6) {
                let state: Vec<u8> = (0..6).map(|i| ((bits >> i) & 1) as u8).collect();
                let gauged_state = gauge_state(&state, &g);
                assert!(
                    (m.energy(&state) - gauged.energy(&gauged_state)).abs() < 1e-9,
                    "seed {seed} bits {bits:06b}"
                );
            }
        }
    }

    #[test]
    fn gauge_state_is_an_involution() {
        let g = random_gauge(8, 3);
        let state: Vec<u8> = vec![0, 1, 1, 0, 1, 0, 0, 1];
        assert_eq!(gauge_state(&gauge_state(&state, &g), &g), state);
    }

    #[test]
    fn identity_gauge_is_identity() {
        let m = random_model(4, 9);
        let g = identity_gauge(4);
        let gauged = apply_gauge(&m, &g);
        for bits in 0u32..16 {
            let s: Vec<u8> = (0..4).map(|i| ((bits >> i) & 1) as u8).collect();
            assert!((m.energy(&s) - gauged.energy(&s)).abs() < 1e-9);
        }
        assert_eq!(gauge_state(&[1, 0, 1, 0], &g), vec![1, 0, 1, 0]);
    }

    #[test]
    fn random_gauge_is_deterministic_per_seed() {
        assert_eq!(random_gauge(16, 7), random_gauge(16, 7));
        assert_ne!(random_gauge(16, 7), random_gauge(16, 8));
    }

    #[test]
    #[should_panic(expected = "gauge length")]
    fn mismatched_gauge_panics() {
        apply_gauge(&QuboModel::new(3), &[1, -1]);
    }
}
