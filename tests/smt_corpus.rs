//! Runs every `.smt2` benchmark in `benchmarks/` through the full solver
//! stack and checks the verdicts — the repo's own SMT-LIB corpus, in the
//! spirit of the SMT-LIB benchmark library the paper's §2.1.1 describes.

use qsmt::{SatStatus, Script, StringSolver};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("benchmarks")
}

fn solve_file(name: &str) -> (SatStatus, Vec<(String, String)>) {
    let path = corpus_dir().join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let script = Script::parse(&src).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
    let out = script
        .solve(&StringSolver::with_defaults().with_seed(41))
        .unwrap_or_else(|e| panic!("{name}: solve error: {e}"));
    let model = out
        .model
        .into_iter()
        .map(|(k, v)| (k, v.to_string()))
        .collect();
    (out.status, model)
}

#[test]
fn corpus_has_expected_size() {
    let count = std::fs::read_dir(corpus_dir())
        .expect("benchmarks directory exists")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "smt2"))
        })
        .count();
    assert!(
        count >= 12,
        "expected at least 12 corpus files, found {count}"
    );
}

#[test]
fn deterministic_rows_solve_exactly() {
    let (status, model) = solve_file("table1_row1_reverse_replace.smt2");
    assert_eq!(status, SatStatus::Sat);
    assert_eq!(model[0].1, "\"ollah\"");

    let (status, model) = solve_file("table1_row4_concat_replace.smt2");
    assert_eq!(status, SatStatus::Sat);
    assert_eq!(model[0].1, "\"hexxo worxd\"");

    let (status, model) = solve_file("nested_pipeline.smt2");
    assert_eq!(status, SatStatus::Sat);
    // "ab"+"cd" = "abcd", reversed = "dcba", first 'd' -> 'z' = "zcba"
    assert_eq!(model[0].1, "\"zcba\"");
}

#[test]
fn generated_rows_satisfy_their_constraints() {
    let (status, model) = solve_file("table1_row2_palindrome.smt2");
    assert_eq!(status, SatStatus::Sat);
    let p = model[0].1.trim_matches('"').to_string();
    assert_eq!(p.len(), 6);
    assert_eq!(p.chars().rev().collect::<String>(), p);

    let (status, model) = solve_file("table1_row3_regex.smt2");
    assert_eq!(status, SatStatus::Sat);
    let r = model[0].1.trim_matches('"').to_string();
    assert!(r.starts_with('a') && r[1..].chars().all(|c| c == 'b' || c == 'c'));

    let (status, model) = solve_file("table1_row5_substring.smt2");
    assert_eq!(status, SatStatus::Sat);
    let s = model[0].1.trim_matches('"').to_string();
    assert_eq!(s.len(), 6);
    assert!(s.contains("hi"));
}

#[test]
fn integer_and_extension_queries() {
    let (status, model) = solve_file("indexof_query.smt2");
    assert_eq!(status, SatStatus::Sat);
    assert_eq!(model[0].1, "6");

    let (status, model) = solve_file("conjunction_palindrome_prefix.smt2");
    assert_eq!(status, SatStatus::Sat);
    let s = model[0].1.trim_matches('"').to_string();
    assert!(s.starts_with("ab"));
    assert_eq!(s.chars().rev().collect::<String>(), s);

    let (status, model) = solve_file("char_pins.smt2");
    assert_eq!(status, SatStatus::Sat);
    let s = model[0].1.trim_matches('"').to_string();
    assert_eq!(s.as_bytes()[0], b'q');
    assert_eq!(s.as_bytes()[2], b'z');

    let (status, model) = solve_file("regex_range.smt2");
    assert_eq!(status, SatStatus::Sat);
    let s = model[0].1.trim_matches('"').to_string();
    assert!(('a'..='f').contains(&s.chars().next().unwrap()));
    assert!(s.ends_with('x'));
}

#[test]
fn affix_conjunction_and_bounded_repetition() {
    let (status, model) = solve_file("suffix_prefix_mix.smt2");
    assert_eq!(status, SatStatus::Sat);
    let s = model[0].1.trim_matches('"').to_string();
    assert!(
        s.starts_with("ab") && s.ends_with("yz") && s.len() == 6,
        "{s:?}"
    );

    let (status, model) = solve_file("bounded_repetition.smt2");
    assert_eq!(status, SatStatus::Sat);
    let s = model[0].1.trim_matches('"').to_string();
    assert_eq!(s, "aaab");
}

#[test]
fn unsat_benchmarks_report_unsat() {
    for name in ["unsat_regex_length.smt2", "unsat_contains_length.smt2"] {
        let (status, _) = solve_file(name);
        assert_eq!(status, SatStatus::Unsat, "{name}");
    }
}
