//! Minimal HTTP/1.1 plumbing for the solve service — still no framework,
//! no dependencies. One request per connection (`Connection: close`),
//! which keeps the server a plain accept-loop and the client a
//! read-to-end.
//!
//! The parser accepts exactly what the service needs: a request line
//! (`METHOD /path?query HTTP/1.1`), headers (only `Content-Length` is
//! interpreted), and an optional body. Everything else 400s.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest request head (request line + headers) the server will buffer.
const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Largest request body the server will buffer (SMT-LIB scripts are
/// small; anything bigger is abuse, not a workload).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// How long the scrape/submit client waits for a TCP connect.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// How long either side waits on a single read before giving up.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path with the query string stripped (`/solve`).
    pub path: String,
    /// Decoded `key=value` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// Last value of a query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses a request target (`/solve?seed=7`) into path + query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    (path.to_string(), query)
}

/// Reads and parses one HTTP request from an accepted connection.
/// Returns `None` for anything unparseable or oversized — the caller
/// answers 400 and closes.
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return None;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.lines();
    let mut parts = lines.next()?.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let content_length = lines
        .filter_map(|line| line.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return None;
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    if body.len() < content_length {
        return None;
    }
    body.truncate(content_length);

    let (path, query) = parse_target(target);
    Some(Request {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// One HTTP response, status line plus body.
pub fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    respond_with(stream, status, content_type, &[], body);
}

/// One HTTP response with extra headers (`Retry-After` on 429s).
pub fn respond_with(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("Connection: close\r\n\r\n");
    response.push_str(body);
    // A client that hangs up mid-response is its own problem.
    let _ = stream.write_all(response.as_bytes());
}

/// One-shot HTTP client used by `qsmt watch` and `qsmt submit`: sends
/// `method path` (plus an optional body) to `addr` and returns the
/// numeric status with the response body.
///
/// Both connect and read carry timeouts so an unreachable or black-holed
/// endpoint fails fast with a clear error instead of hanging the probe —
/// a hung health check is indistinguishable from a passing one to most
/// supervisors.
///
/// # Errors
/// Returns an error when the address does not resolve, the endpoint is
/// unreachable, a timeout fires, or the response is malformed.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    http_request_with_headers(addr, method, path, body)
        .map(|(status, _headers, body)| (status, body))
}

/// Parsed one-shot response: status code, headers (names lowercased,
/// values trimmed, in wire order), and body.
pub type HttpResponse = (u16, Vec<(String, String)>, String);

/// [`http_request`] that also returns the response headers — the
/// variant `qsmt submit` uses to honor `Retry-After` on a 429.
///
/// # Errors
/// Same failure modes as [`http_request`].
pub fn http_request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let addr = addr.trim_start_matches("http://");
    let socket = addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve {addr}: no addresses"))?;
    let mut stream = TcpStream::connect_timeout(&socket, CONNECT_TIMEOUT)
        .map_err(|e| format!("cannot connect to {addr} within {CONNECT_TIMEOUT:?}: {e}"))?;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("cannot read response from {addr} within {READ_TIMEOUT:?}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed HTTP status line from {addr}: {status_line:?}"))?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn parse_target_splits_path_and_query() {
        let (path, query) = parse_target("/solve?seed=7&timeout_ms=250&flag");
        assert_eq!(path, "/solve");
        assert_eq!(
            query,
            vec![
                ("seed".into(), "7".into()),
                ("timeout_ms".into(), "250".into()),
                ("flag".into(), String::new()),
            ]
        );
        let (bare, none) = parse_target("/metrics");
        assert_eq!(bare, "/metrics");
        assert!(none.is_empty());
    }

    #[test]
    fn read_request_round_trips_a_post_with_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).expect("request parses");
            respond(&mut stream, "200 OK", "text/plain", &req.body);
            req
        });
        let body = "(set-logic QF_S)\n(check-sat)\n";
        let (status, echoed) =
            http_request(&addr.to_string(), "POST", "/solve?seed=3", Some(body)).unwrap();
        let req = server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(echoed, body);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.query_param("seed"), Some("3"));
        assert_eq!(req.body, body);
    }

    #[test]
    fn unreachable_endpoint_fails_fast_with_context() {
        // Port 1 is essentially never listening; connect_timeout bounds
        // even a black-holed route.
        let err = http_request("127.0.0.1:1", "GET", "/metrics", None).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "error lacks address: {err}");
    }

    #[test]
    fn query_param_takes_the_last_duplicate() {
        let req = Request {
            method: "GET".into(),
            path: "/".into(),
            query: vec![("a".into(), "1".into()), ("a".into(), "2".into())],
            body: String::new(),
        };
        assert_eq!(req.query_param("a"), Some("2"));
        assert_eq!(req.query_param("b"), None);
    }
}
