//! # qsmt-qpu — simulated quantum annealing hardware
//!
//! The paper (§5) states its "QUBO formulations are compatible with a real
//! quantum annealer" and defers running on one to future work. This crate
//! validates that claim in software by reproducing the full submission
//! pipeline of a physical annealer, with no quantum SDK:
//!
//! 1. **Topology** — real annealers expose a fixed, sparse hardware graph.
//!    [`Topology::chimera`] builds the exact D-Wave Chimera graph
//!    (bipartite K_{t,t} unit cells in a grid); [`Topology::pegasus_like`]
//!    builds a higher-degree Pegasus-style topology (odd couplers +
//!    diagonal inter-cell couplers on top of Chimera).
//! 2. **Minor embedding** — an arbitrary problem graph rarely matches the
//!    hardware graph, so each logical variable is mapped to a *chain* of
//!    physical qubits ([`embed`]).
//! 3. **Chains** — chain qubits are locked together with a ferromagnetic
//!    penalty whose strength comes from a [`ChainStrength`] heuristic;
//!    broken chains are repaired by a [`ChainBreakResolution`] policy.
//! 4. **Sampling** — the embedded model is solved by a classical annealer
//!    standing in for the QPU, optionally with Gaussian control noise on
//!    the embedded coefficients (real QPUs have analogous integrated
//!    control errors), then *unembedded* back to logical variables.
//! 5. **Timing** — a [`QpuTimingModel`] reports the wall-clock a physical
//!    submission would bill (programming + anneal·reads + readout).
//!
//! The end result, [`QpuSimulator`], is a drop-in [`qsmt_anneal::Sampler`]:
//! every string-constraint QUBO in this workspace can be solved either
//! directly or through the simulated hardware path, which is exactly the
//! experiment Bench S4 runs.

#![warn(missing_docs)]

mod cache;
mod chain;
mod embedding;
mod gauge;
mod graph;
mod simulator;
mod timing;
mod topology;

pub use cache::EmbeddingCache;
pub use chain::{ChainBreakResolution, ChainStrength};
pub use embedding::{embed, EmbedError, Embedding};
pub use gauge::{apply_gauge, gauge_state, identity_gauge, random_gauge};
pub use graph::HardwareGraph;
pub use simulator::{QpuResponse, QpuSimulator};
pub use timing::{QpuTiming, QpuTimingModel};
pub use topology::Topology;
