//! Per-β Metropolis acceptance fast paths.
//!
//! The Metropolis criterion `ΔE ≤ 0 ∨ u < exp(−β·ΔE)` costs one RNG draw
//! and one `exp` per uphill proposal in the naive loop. For a fixed β both
//! can almost always be avoided:
//!
//! * **early accept** — `ΔE ≤ 0` needs neither (already the common case);
//! * **hard reject** — beyond `ΔE ≥ ln(2⁵³)/β` the acceptance probability
//!   is below the resolution of a 53-bit uniform draw, so the proposal is
//!   rejected without consulting the RNG at all;
//! * **threshold table** — in between, a precomputed grid of
//!   `exp(−β·k·step)` values brackets the true probability: if the uniform
//!   draw falls below the bucket's lower bound the move is accepted, above
//!   the upper bound it is rejected, and only draws that land *inside* the
//!   bracket (a few percent) pay for an exact `exp`.
//!
//! The bracketed decision is bit-exact with the textbook criterion for
//! every `u > 0`; the hard-reject cutoff deviates only where the true
//! acceptance probability is `< 2⁻⁵³` (≈ 1.1e−16) per proposal, far below
//! anything a finite anneal can observe. One table is built per β, once
//! per run, and shared read-only across parallel reads.

use rand::rngs::SmallRng;
use rand::Rng;

/// Exp-underflow hard-reject cutoff, in units of `β·ΔE`.
///
/// Beyond `ΔE = LN_ACCEPT_CUTOFF/β` the acceptance probability
/// `exp(−β·ΔE)` is `< 2⁻⁵³` — below the resolution of a 53-bit uniform
/// draw — so the proposal is rejected without consulting the RNG at all.
/// (`53·ln 2 ≈ 36.7`; a margin is added so the table's last bucket lower
/// bound stays comfortably above `f64` noise.)
///
/// Public so the scalar path, the batched [word path]
/// (AcceptanceTable::threshold_u64), and any external reimplementation
/// share one definition of "impossibly uphill" and cannot drift.
pub const LN_ACCEPT_CUTOFF: f64 = 40.0;

/// Number of table buckets. 512 gives a per-bucket probability ratio of
/// `exp(−40/512) ≈ 0.925`, i.e. < 8% of consulted proposals fall into the
/// bracket and pay for an exact `exp`, for a 4 KiB table per β.
const BUCKETS: usize = 512;

/// Which fast path decided each Metropolis proposal, counted on the
/// trajectory-probe read by [`AcceptanceTable::accept_counted`].
///
/// The counters expose *why* the table is fast: almost every decision
/// should land in `early_accept`, `hard_reject`, or the two bracket
/// outcomes; `exact_exp` counts the residual proposals that paid for a
/// real `exp` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AcceptCounters {
    /// `ΔE ≤ 0`: accepted with no RNG draw.
    pub early_accept: u64,
    /// `ΔE ≥ cutoff`: rejected with no RNG draw.
    pub hard_reject: u64,
    /// Uniform draw below the bucket's lower probability bound.
    pub bracket_accept: u64,
    /// Uniform draw above the bucket's upper probability bound.
    pub bracket_reject: u64,
    /// Draw landed inside the bracket: an exact `exp` was computed.
    pub exact_exp: u64,
}

impl AcceptCounters {
    /// Total proposals decided.
    pub fn total(&self) -> u64 {
        self.early_accept
            + self.hard_reject
            + self.bracket_accept
            + self.bracket_reject
            + self.exact_exp
    }

    /// Fraction of decisions that needed an exact `exp` (0 when empty).
    pub fn exact_exp_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.exact_exp as f64 / total as f64
        }
    }
}

/// A precomputed Metropolis acceptance test for one inverse temperature.
#[derive(Debug, Clone)]
pub struct AcceptanceTable {
    beta: f64,
    /// `ΔE ≥ cutoff` ⇒ reject without a draw.
    cutoff: f64,
    inv_step: f64,
    /// `probs[k] = exp(−β·k·step)`, `k ∈ 0..=BUCKETS`.
    probs: Vec<f64>,
}

impl AcceptanceTable {
    /// Builds the table for inverse temperature `beta` (> 0, finite).
    pub fn new(beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta > 0.0,
            "acceptance table needs a positive finite β"
        );
        let cutoff = LN_ACCEPT_CUTOFF / beta;
        let step = cutoff / BUCKETS as f64;
        let probs = (0..=BUCKETS)
            .map(|k| (-beta * k as f64 * step).exp())
            .collect();
        Self {
            beta,
            cutoff,
            inv_step: 1.0 / step,
            probs,
        }
    }

    /// Builds one table per β of a realized schedule.
    pub fn for_schedule(betas: &[f64]) -> Vec<Self> {
        betas.iter().map(|&b| Self::new(b)).collect()
    }

    /// The inverse temperature this table was built for.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Metropolis-accepts `delta`, drawing from `rng` only when the
    /// decision actually requires randomness.
    #[inline]
    pub fn accept(&self, delta: f64, rng: &mut SmallRng) -> bool {
        if delta <= 0.0 {
            return true;
        }
        if delta >= self.cutoff {
            return false;
        }
        self.accept_with(delta, rng.gen::<f64>())
    }

    /// [`AcceptanceTable::accept`] with per-fast-path counting, used by
    /// the trajectory-probe read. Consumes the RNG stream identically to
    /// the uncounted path, so a probed read reproduces the plain read
    /// bit-for-bit; the counters are pure side observation.
    #[inline]
    pub fn accept_counted(
        &self,
        delta: f64,
        rng: &mut SmallRng,
        counters: &mut AcceptCounters,
    ) -> bool {
        if delta <= 0.0 {
            counters.early_accept += 1;
            return true;
        }
        if delta >= self.cutoff {
            counters.hard_reject += 1;
            return false;
        }
        let u = rng.gen::<f64>();
        let k = (delta * self.inv_step) as usize;
        if u < self.probs[k + 1] {
            counters.bracket_accept += 1;
            return true;
        }
        if u >= self.probs[k] {
            counters.bracket_reject += 1;
            return false;
        }
        counters.exact_exp += 1;
        u < (-self.beta * delta).exp()
    }

    /// Batched Metropolis decision for up to 64 replica lanes of one
    /// variable: returns an acceptance mask with bit `r` set iff lane
    /// `r`'s `deltas[r]` is accepted at this table's β.
    ///
    /// The scalar fast paths are lifted to whole-word operations — the
    /// early-accept (`ΔE ≤ 0`) and hard-reject (`ΔE ≥ cutoff`, see
    /// [`LN_ACCEPT_CUTOFF`]) masks are built branch-free across all
    /// lanes, and only the residual lanes walk the bracket table. Each
    /// residual lane draws **exactly one** uniform from its own RNG, in
    /// lane order — the same draw [`AcceptanceTable::accept`] would make
    /// — so lane `r`'s decision and RNG stream are bit-identical to a
    /// scalar run of that replica (pinned by
    /// `batched_threshold_is_bit_exact_with_scalar_accept`).
    ///
    /// # Panics
    /// Panics when `deltas` and `rngs` disagree in length or exceed 64
    /// lanes.
    pub fn threshold_u64(&self, deltas: &[f64], rngs: &mut [SmallRng]) -> u64 {
        let lanes = deltas.len();
        assert!(lanes <= 64, "threshold_u64 takes at most 64 lanes");
        assert_eq!(lanes, rngs.len(), "one RNG stream per lane");
        let mut early = 0u64;
        let mut hard = 0u64;
        // Branch-free sweep: two compares per lane, no RNG, no table.
        // (LLVM vectorizes this into compare-to-mask ops; keep it simple.)
        for (r, &d) in deltas.iter().enumerate() {
            early |= u64::from(d <= 0.0) << r;
            hard |= u64::from(d >= self.cutoff) << r;
        }
        let mut accept = early;
        let mut pending = !(early | hard);
        if lanes < 64 {
            pending &= (1u64 << lanes) - 1;
        }
        // Residual lanes (strictly uphill, below cutoff): one uniform
        // draw each, bracketed exactly like the scalar path.
        while pending != 0 {
            let r = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            let u = rngs[r].gen::<f64>();
            accept |= u64::from(self.accept_with(deltas[r], u)) << r;
        }
        accept
    }

    /// The table-bracketed decision for an already-drawn uniform `u`;
    /// exposed separately so tests can verify it against the exact
    /// criterion. Requires `0 < delta < cutoff`.
    #[inline]
    pub fn accept_with(&self, delta: f64, u: f64) -> bool {
        debug_assert!(delta > 0.0 && delta < self.cutoff);
        let k = (delta * self.inv_step) as usize;
        // True probability lies in [probs[k+1], probs[k]].
        if u < self.probs[k + 1] {
            return true;
        }
        if u >= self.probs[k] {
            return false;
        }
        u < (-self.beta * delta).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn downhill_accepts_without_consuming_rng() {
        let t = AcceptanceTable::new(2.0);
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert!(t.accept(-0.5, &mut a));
        assert!(t.accept(0.0, &mut a));
        // Stream untouched: both rngs still agree.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn far_uphill_rejects_without_consuming_rng() {
        let t = AcceptanceTable::new(2.0);
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert!(!t.accept(1e6, &mut a));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn bracketed_decision_matches_exact_criterion() {
        let mut rng = SmallRng::seed_from_u64(42);
        for &beta in &[0.05, 1.0, 7.5, 120.0] {
            let t = AcceptanceTable::new(beta);
            for _ in 0..20_000 {
                let delta = rng.gen::<f64>() * t.cutoff * 0.999 + 1e-12;
                let u = rng.gen::<f64>();
                if u > 0.0 {
                    assert_eq!(
                        t.accept_with(delta, u),
                        u < (-beta * delta).exp(),
                        "β={beta} δ={delta} u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn acceptance_rate_tracks_boltzmann_weight() {
        // Statistical sanity: measured acceptance of a fixed uphill delta
        // approaches exp(−β·ΔE).
        let t = AcceptanceTable::new(1.0);
        let delta = 1.0;
        let mut rng = SmallRng::seed_from_u64(7);
        let accepted = (0..200_000).filter(|_| t.accept(delta, &mut rng)).count();
        let rate = accepted as f64 / 200_000.0;
        let expected = (-1.0f64).exp();
        assert!((rate - expected).abs() < 0.01, "rate {rate} vs {expected}");
    }

    #[test]
    fn counted_accept_matches_plain_accept_and_rng_stream() {
        // Same seeds, same deltas: decisions and the RNG stream must be
        // identical, and the counters must cover every decision.
        for &beta in &[0.05, 1.0, 12.0] {
            let t = AcceptanceTable::new(beta);
            let mut plain_rng = SmallRng::seed_from_u64(33);
            let mut counted_rng = SmallRng::seed_from_u64(33);
            let mut delta_rng = SmallRng::seed_from_u64(77);
            let mut counters = AcceptCounters::default();
            for _ in 0..50_000 {
                let delta = delta_rng.gen_range(-1.0..1.0) * t.cutoff * 1.5;
                assert_eq!(
                    t.accept(delta, &mut plain_rng),
                    t.accept_counted(delta, &mut counted_rng, &mut counters),
                    "β={beta} δ={delta}"
                );
            }
            assert_eq!(plain_rng.gen::<u64>(), counted_rng.gen::<u64>());
            assert_eq!(counters.total(), 50_000);
            assert!(counters.early_accept > 0);
            assert!(counters.hard_reject > 0);
            // The bracket should resolve the overwhelming majority of
            // uphill draws without an exact exp.
            assert!(counters.exact_exp_fraction() < 0.1);
        }
    }

    #[test]
    fn batched_threshold_is_bit_exact_with_scalar_accept() {
        // For every lane: same decision AND same RNG stream position as
        // the scalar path — the multi-replica kernel leans on both.
        let mut delta_rng = SmallRng::seed_from_u64(5);
        for &beta in &[0.05, 1.0, 9.0, 150.0] {
            let t = AcceptanceTable::new(beta);
            for lanes in [1usize, 3, 17, 64] {
                let mut batched: Vec<SmallRng> = (0..lanes)
                    .map(|r| SmallRng::seed_from_u64(1000 + r as u64))
                    .collect();
                let mut scalar: Vec<SmallRng> = (0..lanes)
                    .map(|r| SmallRng::seed_from_u64(1000 + r as u64))
                    .collect();
                for _ in 0..500 {
                    let deltas: Vec<f64> = (0..lanes)
                        .map(|_| delta_rng.gen_range(-1.0..1.0) * t.cutoff * 1.5)
                        .collect();
                    let mask = t.threshold_u64(&deltas, &mut batched);
                    for (r, s_rng) in scalar.iter_mut().enumerate() {
                        let want = t.accept(deltas[r], s_rng);
                        assert_eq!(
                            (mask >> r) & 1 == 1,
                            want,
                            "β={beta} lanes={lanes} lane={r} δ={}",
                            deltas[r]
                        );
                    }
                }
                // Streams still aligned after thousands of decisions.
                for (b, s) in batched.iter_mut().zip(scalar.iter_mut()) {
                    assert_eq!(b.gen::<u64>(), s.gen::<u64>());
                }
                // No stray bits above the active lanes.
                if lanes < 64 {
                    let all_accept = vec![-1.0f64; lanes];
                    let mask = t.threshold_u64(&all_accept, &mut batched);
                    assert_eq!(mask, (1u64 << lanes) - 1);
                }
            }
        }
    }

    #[test]
    fn public_cutoff_constant_matches_table_cutoff() {
        for &beta in &[0.5, 2.0, 40.0] {
            let t = AcceptanceTable::new(beta);
            assert_eq!(t.cutoff, LN_ACCEPT_CUTOFF / beta);
            // At the documented cutoff the true probability is below a
            // 53-bit draw's resolution.
            assert!((-LN_ACCEPT_CUTOFF).exp() < (2.0f64).powi(-53));
        }
    }

    #[test]
    #[should_panic(expected = "positive finite β")]
    fn rejects_nonpositive_beta() {
        AcceptanceTable::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive finite β")]
    fn rejects_infinite_beta() {
        AcceptanceTable::new(f64::INFINITY);
    }
}
