//! The simulated QPU: embed → chain → sample → unembed.

use crate::chain::{count_broken_chains, tie_break_rng, unembed_sample};
use crate::{
    embed, ChainBreakResolution, ChainStrength, EmbedError, Embedding, HardwareGraph, QpuTiming,
    QpuTimingModel, Topology,
};
use parking_lot::Mutex;
use qsmt_anneal::{SampleSet, Sampler, SimulatedAnnealer};
use qsmt_qubo::{QuboModel, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the structure of a logical problem graph (node count plus
/// sorted edge list). Models with identical interaction structure reuse
/// one minor embedding even when their coefficients differ.
type GraphKey = (usize, Vec<(Var, Var)>);

/// A software quantum annealer: accepts an arbitrary logical QUBO, minor-
/// embeds it onto a fixed hardware [`Topology`], locks chains with a
/// ferromagnetic penalty, solves the *embedded* model with a classical
/// annealer standing in for the physical device (optionally with Gaussian
/// control noise on the programmed coefficients), and unembeds the samples
/// back to logical variables with chain-break accounting.
///
/// This exercises the exact pipeline a real D-Wave submission would — the
/// "compatible with a real quantum annealer" claim of the paper's §5 —
/// while remaining entirely classical.
#[derive(Debug, Clone)]
pub struct QpuSimulator {
    topology: Topology,
    chain_strength: ChainStrength,
    resolution: ChainBreakResolution,
    timing: QpuTimingModel,
    noise_sigma: Option<f64>,
    num_reads: usize,
    sweeps: usize,
    seed: u64,
    embed_tries: usize,
    spin_reversal_transforms: usize,
    /// Embedding cache shared across clones of this simulator. Repeated
    /// submissions with the same interaction structure (pipelines,
    /// `solve_many`, parameter sweeps) skip the embedding search — the
    /// dominant cost of small submissions.
    embedding_cache: Arc<Mutex<HashMap<GraphKey, Embedding>>>,
}

impl QpuSimulator {
    /// Creates a simulator on the given topology with defaults: UTC chain
    /// strength, majority-vote resolution, 64 reads, 256 sweeps, no noise.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            chain_strength: ChainStrength::default(),
            resolution: ChainBreakResolution::MajorityVote,
            timing: QpuTimingModel::default(),
            noise_sigma: None,
            num_reads: 64,
            sweeps: 256,
            seed: 0,
            embed_tries: 16,
            spin_reversal_transforms: 1,
            embedding_cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Number of embeddings currently cached.
    pub fn cached_embeddings(&self) -> usize {
        self.embedding_cache.lock().len()
    }

    /// Splits the reads across `n` random spin-reversal (gauge) transforms
    /// — the standard mitigation for systematic control biases. `n = 1`
    /// (default) uses the identity gauge only. See [`crate::apply_gauge`].
    pub fn with_spin_reversal_transforms(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one gauge");
        self.spin_reversal_transforms = n;
        self
    }

    /// Sets the chain strength heuristic.
    pub fn with_chain_strength(mut self, s: ChainStrength) -> Self {
        self.chain_strength = s;
        self
    }

    /// Sets the chain-break resolution policy.
    pub fn with_resolution(mut self, r: ChainBreakResolution) -> Self {
        self.resolution = r;
        self
    }

    /// Sets the timing model.
    pub fn with_timing(mut self, t: QpuTimingModel) -> Self {
        self.timing = t;
        self
    }

    /// Enables Gaussian control noise: each programmed coefficient is
    /// perturbed by `N(0, (sigma·max|coeff|)²)`, mimicking integrated
    /// control errors of physical hardware.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma = (sigma > 0.0).then_some(sigma);
        self
    }

    /// Sets the number of reads per call.
    pub fn with_num_reads(mut self, n: usize) -> Self {
        self.num_reads = n;
        self
    }

    /// Sets annealing sweeps of the internal sampler.
    pub fn with_sweeps(mut self, s: usize) -> Self {
        self.sweeps = s;
        self
    }

    /// Sets the RNG seed (embedding, annealing, noise, tie-breaking).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the embedding retry budget.
    pub fn with_embed_tries(mut self, t: usize) -> Self {
        self.embed_tries = t.max(1);
        self
    }

    /// The simulator's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Extracts the interaction graph of a logical model (nodes =
    /// variables, edges = nonzero quadratic terms).
    pub fn problem_graph(model: &QuboModel) -> HardwareGraph {
        let mut g = HardwareGraph::new(model.num_vars());
        for (i, j, _) in model.quadratic_iter() {
            g.add_edge(i, j);
        }
        g
    }

    /// Builds the embedded (physical) model for a logical model and
    /// embedding: linear terms split uniformly over chain qubits, couplings
    /// split uniformly over available inter-chain couplers, chains locked
    /// by a ferromagnetic `strength·(x_a + x_b − 2·x_a·x_b)` penalty on
    /// every intra-chain coupler.
    ///
    /// When all chains are intact, the embedded energy equals the logical
    /// energy (chain penalties contribute zero).
    pub fn embed_model(
        &self,
        logical: &QuboModel,
        embedding: &Embedding,
        strength: f64,
    ) -> QuboModel {
        let hw = self.topology.graph();
        let mut phys = QuboModel::new(hw.num_nodes());
        phys.add_offset(logical.offset());
        // Linear terms.
        for v in 0..logical.num_vars() as Var {
            let h = logical.linear(v);
            if h != 0.0 {
                let chain = embedding.chain(v);
                let share = h / chain.len() as f64;
                for &q in chain {
                    phys.add_linear(q, share);
                }
            }
        }
        // Logical couplings split across available physical couplers.
        for (u, v, q) in logical.quadratic_iter() {
            let cu = embedding.chain(u);
            let cv = embedding.chain(v);
            let mut couplers = Vec::new();
            for &a in cu {
                for &b in cv {
                    if hw.has_edge(a, b) {
                        couplers.push((a, b));
                    }
                }
            }
            debug_assert!(
                !couplers.is_empty(),
                "verified embedding must provide a coupler for every edge"
            );
            let share = q / couplers.len() as f64;
            for (a, b) in couplers {
                phys.add_quadratic(a, b, share);
            }
        }
        // Chain-locking penalties on intra-chain couplers.
        for chain in embedding.chains() {
            for &a in chain {
                for &b in chain {
                    if a < b && hw.has_edge(a, b) {
                        phys.add_linear(a, strength);
                        phys.add_linear(b, strength);
                        phys.add_quadratic(a, b, -2.0 * strength);
                        phys.add_offset(0.0);
                    }
                }
            }
        }
        phys
    }

    fn apply_noise(&self, model: &mut QuboModel, sigma: f64, seed: u64) {
        let scale = model.max_abs_coefficient();
        if scale == 0.0 {
            return;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gauss = move || -> f64 {
            // Box–Muller transform.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let sd = sigma * scale;
        for i in 0..model.num_vars() as Var {
            if model.linear(i) != 0.0 {
                model.add_linear(i, sd * gauss());
            }
        }
        let quads: Vec<(Var, Var, f64)> = model.quadratic_iter().collect();
        for (i, j, _) in quads {
            model.add_quadratic(i, j, sd * gauss());
        }
    }

    /// Submits a logical QUBO to the simulated QPU.
    ///
    /// # Errors
    /// Returns [`EmbedError`] when the problem cannot be minor-embedded in
    /// the topology within the retry budget.
    pub fn sample_qubo(&self, logical: &QuboModel) -> Result<QpuResponse, EmbedError> {
        let problem = Self::problem_graph(logical);
        let key: GraphKey = {
            let mut edges: Vec<(Var, Var)> = logical
                .quadratic_iter()
                .map(|(i, j, _)| (i.min(j), i.max(j)))
                .collect();
            edges.sort_unstable();
            (logical.num_vars(), edges)
        };
        let cached = self.embedding_cache.lock().get(&key).cloned();
        let embedding = match cached {
            Some(e) => e,
            None => {
                let e = embed(&problem, self.topology.graph(), self.seed, self.embed_tries)?;
                self.embedding_cache.lock().insert(key, e.clone());
                e
            }
        };
        let strength = self.chain_strength.resolve(logical);
        let physical = self.embed_model(logical, &embedding, strength);

        let chains = embedding.chains();
        let total_chains = chains.len().max(1);
        let mut tie_rng = tie_break_rng(self.seed ^ 0x7469_6573);
        let mut reads: Vec<(Vec<u8>, f64)> = Vec::new();
        let mut broken_total = 0usize;
        let mut discarded = 0usize;
        let mut reads_seen = 0usize;

        // Split reads across gauges (gauge 0 is the identity, so the
        // default single-transform configuration is a plain submission).
        let gauges = self.spin_reversal_transforms;
        let base_reads = self.num_reads / gauges;
        let remainder = self.num_reads % gauges;
        for g in 0..gauges {
            let gauge = if g == 0 {
                crate::identity_gauge(physical.num_vars())
            } else {
                crate::random_gauge(physical.num_vars(), self.seed ^ (0x6761_7567 + g as u64))
            };
            let mut programmed = if g == 0 {
                physical.clone()
            } else {
                crate::apply_gauge(&physical, &gauge)
            };
            if let Some(sigma) = self.noise_sigma {
                // Each gauge is a separate programming cycle with its own
                // control-noise realization — that independence is what
                // spin-reversal averaging exploits.
                self.apply_noise(&mut programmed, sigma, self.seed ^ 0x6e6f_6973 ^ g as u64);
            }
            let gauge_reads = base_reads + usize::from(g < remainder);
            if gauge_reads == 0 {
                continue;
            }
            let annealer = SimulatedAnnealer::new()
                .with_num_reads(gauge_reads)
                .with_sweeps(self.sweeps)
                .with_seed(self.seed.wrapping_add((g as u64) << 32));
            let physical_set = annealer.sample(&programmed);
            for sample in physical_set.iter() {
                for _ in 0..sample.occurrences {
                    reads_seen += 1;
                    // Un-gauge back to the original physical frame first.
                    let raw = crate::gauge_state(&sample.state, &gauge);
                    broken_total += count_broken_chains(&raw, chains);
                    match unembed_sample(&raw, chains, self.resolution, &mut tie_rng) {
                        Some((logical_state, _)) => {
                            let e = logical.energy(&logical_state);
                            reads.push((logical_state, e));
                        }
                        None => discarded += 1,
                    }
                }
            }
        }
        let chain_break_fraction = broken_total as f64 / (reads_seen.max(1) * total_chains) as f64;
        Ok(QpuResponse {
            samples: SampleSet::from_reads(reads),
            chain_break_fraction,
            broken_chains: broken_total as u64,
            chain_slots: (reads_seen * total_chains) as u64,
            discarded_reads: discarded,
            timing: self.timing.access_time(self.num_reads),
            chain_strength: strength,
            embedding,
        })
    }
}

impl Sampler for QpuSimulator {
    /// Samples through the full QPU pipeline.
    ///
    /// # Panics
    /// Panics if the model cannot be embedded; use
    /// [`QpuSimulator::sample_qubo`] for fallible submission.
    fn sample(&self, model: &QuboModel) -> SampleSet {
        self.sample_qubo(model)
            .expect("model could not be embedded in the QPU topology")
            .samples
    }

    fn name(&self) -> &'static str {
        "qpu-simulator"
    }
}

/// The result of one simulated QPU submission.
#[derive(Debug, Clone)]
pub struct QpuResponse {
    /// Unembedded logical samples with logical energies.
    pub samples: SampleSet,
    /// Broken chains per (read × chain): 0.0 = all chains intact.
    pub chain_break_fraction: f64,
    /// Raw broken-chain count behind
    /// [`QpuResponse::chain_break_fraction`] — counter-style for the
    /// metrics exporter, which prefers monotone numerators over ratios.
    pub broken_chains: u64,
    /// Total chain observations (reads × chains per read): the
    /// denominator paired with [`QpuResponse::broken_chains`].
    pub chain_slots: u64,
    /// Reads dropped by [`ChainBreakResolution::Discard`].
    pub discarded_reads: usize,
    /// Billed QPU access time.
    pub timing: QpuTiming,
    /// Resolved chain strength actually programmed.
    pub chain_strength: f64,
    /// The minor embedding used.
    pub embedding: Embedding,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-variable fully-connected logical model with a unique ground
    /// state 1010 — requires chains on Chimera.
    fn k4_model() -> (QuboModel, Vec<u8>) {
        let mut m = QuboModel::new(4);
        m.add_linear(0, -2.0);
        m.add_linear(1, 1.0);
        m.add_linear(2, -2.0);
        m.add_linear(3, 1.0);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                m.add_quadratic(i, j, 0.5);
            }
        }
        let (_, states) = m.brute_force_ground_states();
        assert_eq!(states.len(), 1);
        (m, states[0].clone())
    }

    #[test]
    fn qpu_pipeline_recovers_ground_state() {
        let (m, gs) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4)).with_seed(3);
        let resp = qpu.sample_qubo(&m).unwrap();
        assert_eq!(resp.samples.best().unwrap().state, gs);
        // Counter-style chain-break fields agree with the ratio.
        assert!(resp.chain_slots > 0);
        assert!(
            (resp.broken_chains as f64 / resp.chain_slots as f64 - resp.chain_break_fraction).abs()
                < 1e-12
        );
    }

    #[test]
    fn embedded_energy_matches_logical_when_chains_intact() {
        let (m, _) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4)).with_seed(1);
        let problem = QpuSimulator::problem_graph(&m);
        let emb = embed(&problem, qpu.topology().graph(), 1, 8).unwrap();
        let phys = qpu.embed_model(&m, &emb, 4.0);
        // Build a physical state from a logical one by copying chain values.
        for logical_state in [[0u8, 0, 0, 0], [1, 0, 1, 0], [1, 1, 1, 1]] {
            let mut p = vec![0u8; phys.num_vars()];
            for (v, chain) in emb.chains().iter().enumerate() {
                for &q in chain {
                    p[q as usize] = logical_state[v];
                }
            }
            assert!(
                (phys.energy(&p) - m.energy(&logical_state)).abs() < 1e-9,
                "intact-chain energies must agree"
            );
        }
    }

    #[test]
    fn broken_chain_pays_penalty() {
        let (m, _) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4)).with_seed(1);
        let problem = QpuSimulator::problem_graph(&m);
        let emb = embed(&problem, qpu.topology().graph(), 1, 8).unwrap();
        let strength = 4.0;
        let phys = qpu.embed_model(&m, &emb, strength);
        // Find a chain of length ≥ 2 and break it.
        let (v, chain) = emb
            .chains()
            .iter()
            .enumerate()
            .find(|(_, c)| c.len() >= 2)
            .expect("K4 on Chimera must have a multi-qubit chain");
        let mut intact = vec![0u8; phys.num_vars()];
        for &q in chain {
            intact[q as usize] = 1;
        }
        let mut broken = intact.clone();
        broken[chain[0] as usize] = 0;
        let _ = v;
        assert!(
            phys.energy(&broken) > phys.energy(&intact) - 1e-9 + strength - 1e-9,
            "breaking a chain must cost at least one chain penalty"
        );
    }

    #[test]
    fn problem_graph_reflects_interactions() {
        let mut m = QuboModel::new(3);
        m.add_quadratic(0, 2, 1.0);
        let g = QpuSimulator::problem_graph(&m);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn unembeddable_model_errors() {
        let mut m = QuboModel::new(20);
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                m.add_quadratic(i, j, 1.0);
            }
        }
        // K20 cannot embed in a single Chimera cell (8 qubits).
        let qpu = QpuSimulator::new(Topology::chimera(1, 1, 4)).with_embed_tries(2);
        assert!(qpu.sample_qubo(&m).is_err());
    }

    #[test]
    fn timing_reflects_read_count() {
        let (m, _) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4))
            .with_num_reads(10)
            .with_seed(2);
        let resp = qpu.sample_qubo(&m).unwrap();
        assert_eq!(resp.timing.num_reads, 10);
        assert_eq!(
            resp.samples.total_reads() as usize + resp.discarded_reads,
            10
        );
    }

    #[test]
    fn noise_perturbs_but_mild_noise_keeps_ground_state() {
        let (m, gs) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4))
            .with_seed(5)
            .with_noise(0.01);
        let resp = qpu.sample_qubo(&m).unwrap();
        assert_eq!(resp.samples.best().unwrap().state, gs);
    }

    #[test]
    fn discard_policy_accounts_for_reads() {
        let (m, _) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4))
            .with_seed(7)
            .with_resolution(ChainBreakResolution::Discard)
            .with_num_reads(32);
        let resp = qpu.sample_qubo(&m).unwrap();
        assert_eq!(
            resp.samples.total_reads() as usize + resp.discarded_reads,
            32
        );
    }

    #[test]
    fn spin_reversal_transforms_preserve_read_accounting() {
        let (m, gs) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4))
            .with_seed(11)
            .with_num_reads(30)
            .with_spin_reversal_transforms(4); // 30 = 8+8+7+7
        let resp = qpu.sample_qubo(&m).unwrap();
        assert_eq!(
            resp.samples.total_reads() as usize + resp.discarded_reads,
            30
        );
        assert_eq!(resp.samples.best().unwrap().state, gs);
    }

    #[test]
    fn spin_reversal_transforms_solve_under_noise() {
        let (m, gs) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4))
            .with_seed(13)
            .with_num_reads(64)
            .with_noise(0.02)
            .with_spin_reversal_transforms(4);
        let resp = qpu.sample_qubo(&m).unwrap();
        assert_eq!(resp.samples.best().unwrap().state, gs);
    }

    #[test]
    #[should_panic(expected = "at least one gauge")]
    fn zero_gauges_rejected() {
        let _ = QpuSimulator::new(Topology::chimera(1, 1, 4)).with_spin_reversal_transforms(0);
    }

    #[test]
    fn embedding_cache_is_reused_across_submissions() {
        let (m, _) = k4_model();
        let qpu = QpuSimulator::new(Topology::chimera(2, 2, 4)).with_seed(1);
        assert_eq!(qpu.cached_embeddings(), 0);
        let first = qpu.sample_qubo(&m).unwrap();
        assert_eq!(qpu.cached_embeddings(), 1);
        let second = qpu.sample_qubo(&m).unwrap();
        assert_eq!(
            qpu.cached_embeddings(),
            1,
            "same structure must hit the cache"
        );
        assert_eq!(first.embedding, second.embedding);
        // A different coefficient pattern with the same structure also hits.
        let mut m2 = m;
        m2.add_linear(0, 0.25);
        qpu.sample_qubo(&m2).unwrap();
        assert_eq!(qpu.cached_embeddings(), 1);
        // A different structure misses.
        let mut m3 = QuboModel::new(4);
        m3.add_quadratic(0, 1, 1.0);
        qpu.sample_qubo(&m3).unwrap();
        assert_eq!(qpu.cached_embeddings(), 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let (m, _) = k4_model();
        let mk = || {
            QpuSimulator::new(Topology::chimera(2, 2, 4))
                .with_seed(9)
                .with_noise(0.05)
                .sample_qubo(&m)
                .unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.chain_break_fraction, b.chain_break_fraction);
    }
}
