; Provably unsatisfiable: contained substring longer than the string
(set-logic QF_S)
(declare-const s String)
(assert (str.contains s "toolong"))
(assert (= (str.len s) 3))
(check-sat)
