//! Static routing features.
//!
//! A fixed-schema vector of script-level facts, cheap to compute and
//! independent of any solve: problem size, operator mix, and how much
//! the abstract domains narrowed. ROADMAP item 3 (portfolio routing)
//! wants exactly this as input — the fields below are stable so a
//! future router can train against recorded reports.

use crate::domain::StrDomain;
use crate::ir::{AbsAssert, AbsProgram};
use qsmt_telemetry::Json;

/// The static feature vector. All counts are over the lowered program;
/// domain-derived fields reflect the post-fixpoint state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureVector {
    /// Declared string variables.
    pub string_vars: usize,
    /// Declared Int variables.
    pub int_vars: usize,
    /// Total assertions (including unsupported shapes).
    pub assertions: usize,
    /// `(= (str.len x) n)` assertions.
    pub len_eqs: usize,
    /// `str.contains` assertions.
    pub contains: usize,
    /// `str.prefixof` assertions.
    pub prefixes: usize,
    /// `str.suffixof` assertions.
    pub suffixes: usize,
    /// `str.at` pin assertions.
    pub pins: usize,
    /// `str.in_re` assertions.
    pub regexes: usize,
    /// Ground equalities (`x = <ground term>`).
    pub ground_eqs: usize,
    /// Variable–variable equalities.
    pub var_eqs: usize,
    /// Palindrome (`x = str.rev x`) assertions.
    pub self_reverses: usize,
    /// indexOf definitions over Int variables.
    pub index_ofs: usize,
    /// Assertions outside the abstract fragment.
    pub unsupported: usize,
    /// Connected components of the variable/equality constraint graph
    /// (string variables linked by `=`); isolated variables count as
    /// their own component.
    pub eq_classes: usize,
    /// Variables whose final length interval is degenerate.
    pub exact_len_vars: usize,
    /// Positions across all variables proven to hold one character.
    pub pinned_positions: usize,
    /// Mean admissible-character count over all materialized positions
    /// of exact-length variables (128.0 = fully unconstrained); 0 when
    /// no variable has an exact length.
    pub avg_position_width: f64,
}

impl FeatureVector {
    /// Computes the vector from a lowered program and its final
    /// domains.
    pub fn compute(program: &AbsProgram, domains: &[StrDomain]) -> FeatureVector {
        let mut f = FeatureVector {
            string_vars: program.string_vars.len(),
            int_vars: program.int_vars,
            assertions: program.asserts.len(),
            ..FeatureVector::default()
        };
        for (_, a) in &program.asserts {
            match a {
                AbsAssert::LenEq { .. } => f.len_eqs += 1,
                AbsAssert::Contains { .. } => f.contains += 1,
                AbsAssert::PrefixLit { .. } => f.prefixes += 1,
                AbsAssert::SuffixLit { .. } => f.suffixes += 1,
                AbsAssert::PinAt { .. } => f.pins += 1,
                AbsAssert::InRegex { .. } => f.regexes += 1,
                AbsAssert::GroundEq { .. } => f.ground_eqs += 1,
                AbsAssert::VarEq { .. } => f.var_eqs += 1,
                AbsAssert::SelfReverse { .. } => f.self_reverses += 1,
                AbsAssert::IndexOfDef => f.index_ofs += 1,
                AbsAssert::Unsupported => f.unsupported += 1,
            }
        }

        // Connected components under var-var equality.
        let n = program.string_vars.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (_, a) in &program.asserts {
            if let AbsAssert::VarEq { a, b } = a {
                let (ra, rb) = (find(&mut parent, *a), find(&mut parent, *b));
                parent[ra] = rb;
            }
        }
        let mut roots: Vec<usize> = (0..n).map(|v| find(&mut parent, v)).collect();
        roots.sort_unstable();
        roots.dedup();
        f.eq_classes = roots.len();

        let mut positions = 0usize;
        let mut width_sum = 0f64;
        for d in domains {
            if let Some(len) = d.len.exact_value() {
                f.exact_len_vars += 1;
                for i in 0..len {
                    positions += 1;
                    width_sum += f64::from(d.at(i).len());
                }
            }
            f.pinned_positions += d.pins().len();
        }
        if positions > 0 {
            f.avg_position_width = width_sum / positions as f64;
        }
        f
    }

    /// JSON object with one key per field.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("string_vars", Json::Num(self.string_vars as f64)),
            ("int_vars", Json::Num(self.int_vars as f64)),
            ("assertions", Json::Num(self.assertions as f64)),
            ("len_eqs", Json::Num(self.len_eqs as f64)),
            ("contains", Json::Num(self.contains as f64)),
            ("prefixes", Json::Num(self.prefixes as f64)),
            ("suffixes", Json::Num(self.suffixes as f64)),
            ("pins", Json::Num(self.pins as f64)),
            ("regexes", Json::Num(self.regexes as f64)),
            ("ground_eqs", Json::Num(self.ground_eqs as f64)),
            ("var_eqs", Json::Num(self.var_eqs as f64)),
            ("self_reverses", Json::Num(self.self_reverses as f64)),
            ("index_ofs", Json::Num(self.index_ofs as f64)),
            ("unsupported", Json::Num(self.unsupported as f64)),
            ("eq_classes", Json::Num(self.eq_classes as f64)),
            ("exact_len_vars", Json::Num(self.exact_len_vars as f64)),
            ("pinned_positions", Json::Num(self.pinned_positions as f64)),
            ("avg_position_width", Json::Num(self.avg_position_width)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;

    #[test]
    fn counts_ops_and_domain_facts() {
        let program = AbsProgram {
            string_vars: vec!["s".to_string(), "t".to_string()],
            int_vars: 1,
            asserts: vec![
                (
                    0,
                    AbsAssert::PinAt {
                        var: 0,
                        index: 0,
                        ch: 'q',
                    },
                ),
                (1, AbsAssert::LenEq { var: 0, n: 2 }),
                (2, AbsAssert::IndexOfDef),
            ],
        };
        let a = analyze(program);
        let f = &a.features;
        assert_eq!((f.string_vars, f.int_vars, f.assertions), (2, 1, 3));
        assert_eq!((f.pins, f.len_eqs, f.index_ofs), (1, 1, 1));
        assert_eq!(f.eq_classes, 2);
        assert_eq!(f.exact_len_vars, 1);
        assert_eq!(f.pinned_positions, 1);
        // Position 0 pinned (width 1), position 1 free (width 128).
        assert!((f.avg_position_width - 64.5).abs() < 1e-9);
        let json = f.to_json();
        assert_eq!(json.get("pins").and_then(Json::as_f64), Some(1.0));
    }
}
