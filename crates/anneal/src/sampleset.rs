//! Sample aggregation: the result type every sampler returns.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One distinct binary assignment drawn by a sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The binary assignment (one 0/1 byte per variable).
    pub state: Vec<u8>,
    /// QUBO energy of `state` (includes the model offset).
    pub energy: f64,
    /// How many reads produced this exact state.
    pub occurrences: u32,
}

/// An energy-sorted collection of distinct samples.
///
/// Mirrors the D-Wave `SampleSet`: duplicate states are aggregated with an
/// occurrence count, the lowest-energy sample comes first, and ties are
/// broken by occurrence count (more frequent first) then lexicographically
/// by state for determinism.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// Builds a sample set from raw `(state, energy)` reads, aggregating
    /// duplicates and sorting by energy.
    pub fn from_reads(reads: Vec<(Vec<u8>, f64)>) -> Self {
        let mut agg: HashMap<Vec<u8>, (f64, u32)> = HashMap::new();
        for (state, energy) in reads {
            let entry = agg.entry(state).or_insert((energy, 0));
            entry.1 += 1;
            // Energies of identical states must agree; keep the first and
            // assert in debug builds.
            debug_assert!(
                (entry.0 - energy).abs() < 1e-9,
                "identical states reported different energies"
            );
        }
        let mut samples: Vec<Sample> = agg
            .into_iter()
            .map(|(state, (energy, occurrences))| Sample {
                state,
                energy,
                occurrences,
            })
            .collect();
        samples.sort_by(|a, b| {
            a.energy
                .partial_cmp(&b.energy)
                .expect("sample energies must not be NaN")
                .then(b.occurrences.cmp(&a.occurrences))
                .then(a.state.cmp(&b.state))
        });
        Self { samples }
    }

    /// The lowest-energy sample, if any reads were taken.
    pub fn best(&self) -> Option<&Sample> {
        self.samples.first()
    }

    /// The lowest energy observed.
    pub fn lowest_energy(&self) -> Option<f64> {
        self.best().map(|s| s.energy)
    }

    /// All distinct samples, lowest energy first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Number of *distinct* states.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no reads were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total reads across all distinct states.
    pub fn total_reads(&self) -> u32 {
        self.samples.iter().map(|s| s.occurrences).sum()
    }

    /// Fraction of reads that landed within `tol` of the lowest energy.
    /// This is the "ground-state success probability" metric used in the
    /// sampler benches.
    pub fn success_fraction(&self, tol: f64) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            return 0.0;
        }
        let best = self.samples[0].energy;
        let hits: u32 = self
            .samples
            .iter()
            .filter(|s| s.energy <= best + tol)
            .map(|s| s.occurrences)
            .sum();
        hits as f64 / total as f64
    }

    /// All samples whose energy is within `tol` of the minimum.
    pub fn ground_states(&self, tol: f64) -> Vec<&Sample> {
        match self.lowest_energy() {
            None => Vec::new(),
            Some(best) => self
                .samples
                .iter()
                .take_while(|s| s.energy <= best + tol)
                .collect(),
        }
    }

    /// Read-weighted energy statistics across all samples. `None` for an
    /// empty set.
    pub fn energy_stats(&self) -> Option<EnergyStats> {
        let total = self.total_reads();
        if total == 0 {
            return None;
        }
        let n = total as f64;
        let mean = self
            .samples
            .iter()
            .map(|s| s.energy * s.occurrences as f64)
            .sum::<f64>()
            / n;
        let var = self
            .samples
            .iter()
            .map(|s| (s.energy - mean).powi(2) * s.occurrences as f64)
            .sum::<f64>()
            / n;
        Some(EnergyStats {
            min: self.samples.first().expect("nonempty").energy,
            max: self.samples.last().expect("nonempty").energy,
            mean,
            std_dev: var.sqrt(),
        })
    }

    /// Merges another sample set into this one, re-aggregating duplicates.
    pub fn merge(self, other: SampleSet) -> SampleSet {
        let reads = self
            .samples
            .into_iter()
            .chain(other.samples)
            .flat_map(|s| std::iter::repeat_n((s.state, s.energy), s.occurrences as usize))
            .collect();
        SampleSet::from_reads(reads)
    }
}

/// Read-weighted summary statistics of a sample set's energies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Lowest observed energy.
    pub min: f64,
    /// Highest observed energy.
    pub max: f64,
    /// Read-weighted mean energy.
    pub mean: f64,
    /// Read-weighted standard deviation.
    pub std_dev: f64,
}

impl IntoIterator for SampleSet {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_aggregate_with_counts() {
        let set = SampleSet::from_reads(vec![
            (vec![0, 1], 1.0),
            (vec![0, 1], 1.0),
            (vec![1, 0], -1.0),
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_reads(), 3);
        assert_eq!(set.best().unwrap().state, vec![1, 0]);
        let dup = set.iter().find(|s| s.state == vec![0, 1]).unwrap();
        assert_eq!(dup.occurrences, 2);
    }

    #[test]
    fn sorted_lowest_energy_first() {
        let set = SampleSet::from_reads(vec![(vec![1], 5.0), (vec![0], -5.0)]);
        let energies: Vec<f64> = set.iter().map(|s| s.energy).collect();
        assert_eq!(energies, vec![-5.0, 5.0]);
    }

    #[test]
    fn ties_broken_by_occurrences_then_state() {
        let set = SampleSet::from_reads(vec![
            (vec![1, 1], 0.0),
            (vec![0, 0], 0.0),
            (vec![1, 1], 0.0),
        ]);
        assert_eq!(set.best().unwrap().state, vec![1, 1]);
    }

    #[test]
    fn success_fraction_counts_reads_not_states() {
        let set = SampleSet::from_reads(vec![
            (vec![0], 0.0),
            (vec![0], 0.0),
            (vec![0], 0.0),
            (vec![1], 1.0),
        ]);
        assert!((set.success_fraction(1e-9) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ground_states_respects_tolerance() {
        let set = SampleSet::from_reads(vec![
            (vec![0, 0], 0.0),
            (vec![0, 1], 0.05),
            (vec![1, 1], 3.0),
        ]);
        assert_eq!(set.ground_states(0.1).len(), 2);
        assert_eq!(set.ground_states(1e-9).len(), 1);
    }

    #[test]
    fn empty_set_behaviour() {
        let set = SampleSet::from_reads(vec![]);
        assert!(set.is_empty());
        assert!(set.best().is_none());
        assert_eq!(set.success_fraction(0.0), 0.0);
        assert!(set.ground_states(0.0).is_empty());
    }

    #[test]
    fn energy_stats_are_read_weighted() {
        let set = SampleSet::from_reads(vec![(vec![0], 0.0), (vec![0], 0.0), (vec![1], 3.0)]);
        let st = set.energy_stats().unwrap();
        assert_eq!(st.min, 0.0);
        assert_eq!(st.max, 3.0);
        assert!((st.mean - 1.0).abs() < 1e-12);
        assert!((st.std_dev - (2.0f64).sqrt()).abs() < 1e-12);
        assert!(SampleSet::from_reads(vec![]).energy_stats().is_none());
    }

    #[test]
    fn merge_reaggregates() {
        let a = SampleSet::from_reads(vec![(vec![1], 1.0)]);
        let b = SampleSet::from_reads(vec![(vec![1], 1.0), (vec![0], 0.0)]);
        let m = a.merge(b);
        assert_eq!(m.total_reads(), 3);
        assert_eq!(
            m.iter().find(|s| s.state == vec![1]).unwrap().occurrences,
            2
        );
    }
}
