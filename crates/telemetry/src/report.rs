//! Structured per-stage statistics for one solve, aggregated into
//! [`SolveReport`] / [`GoalReport`] / [`RunReport`] and serialized to JSON
//! by `qsmt solve --report`.
//!
//! Every field emitted here is documented in `docs/OBSERVABILITY.md`;
//! field names are a stable interface — rename there too or not at all.

use crate::dynamics::DynamicsStats;
use crate::json::Json;
use crate::recorder::SpanRecord;

/// Shape statistics of a QUBO model (the "QUBO matrix" Figure 1 box).
#[derive(Debug, Clone, PartialEq)]
pub struct QuboShape {
    /// Number of binary variables (matrix dimension).
    pub num_vars: usize,
    /// Number of nonzero off-diagonal interactions.
    pub num_interactions: usize,
    /// `num_interactions / (n·(n−1)/2)` — fraction of possible pairwise
    /// couplings present. 0 for models with fewer than two variables.
    pub density: f64,
    /// Constant energy offset.
    pub offset: f64,
    /// Largest |coefficient| over linear and quadratic terms.
    pub max_abs_coefficient: f64,
}

impl QuboShape {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("num_vars", Json::from(self.num_vars)),
            ("num_interactions", Json::from(self.num_interactions)),
            ("density", Json::from(self.density)),
            ("offset", Json::from(self.offset)),
            ("max_abs_coefficient", Json::from(self.max_abs_coefficient)),
        ])
    }
}

/// Statistics of the compile stage (constraint → encoded QUBO).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileStats {
    /// Human description of the constraint that was encoded.
    pub constraint: String,
    /// Name of the encoding that produced the QUBO.
    pub encoding: String,
    /// Wall-clock time of encoding, microseconds.
    pub time_us: u64,
}

impl CompileStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("constraint", Json::from(self.constraint.as_str())),
            ("encoding", Json::from(self.encoding.as_str())),
            ("time_us", Json::from(self.time_us)),
        ])
    }
}

/// Statistics of the presolve analysis (persistencies / variable fixing).
#[derive(Debug, Clone, PartialEq)]
pub struct PresolveStats {
    /// Wall-clock time of the presolve pass, microseconds.
    pub time_us: u64,
    /// Variables in the model before presolve.
    pub original_vars: usize,
    /// Variables fixed by persistency analysis.
    pub fixed_vars: usize,
    /// Variables remaining after fixing.
    pub reduced_vars: usize,
    /// `fixed_vars / original_vars` (0 for an empty model).
    pub reduction_ratio: f64,
}

impl PresolveStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("time_us", Json::from(self.time_us)),
            ("original_vars", Json::from(self.original_vars)),
            ("fixed_vars", Json::from(self.fixed_vars)),
            ("reduced_vars", Json::from(self.reduced_vars)),
            ("reduction_ratio", Json::from(self.reduction_ratio)),
        ])
    }
}

/// Minor-embedding statistics (hardware projection of the logical QUBO).
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingStats {
    /// Name of the target topology, e.g. `"chimera-4x4x4"`.
    pub topology: String,
    /// Logical variables embedded.
    pub num_logical: usize,
    /// Physical qubits used across all chains.
    pub num_physical_qubits: usize,
    /// Length of the longest chain.
    pub max_chain_length: usize,
    /// Mean chain length (`num_physical_qubits / num_logical`).
    pub mean_chain_length: f64,
    /// `chain_length_histogram[k]` counts chains of length `k+1`.
    pub chain_length_histogram: Vec<u64>,
    /// Wall-clock time of the embedding search, microseconds.
    pub time_us: u64,
}

impl EmbeddingStats {
    /// Builds stats from a chain decomposition (one `Vec` of physical
    /// qubits per logical variable).
    pub fn from_chains(topology: impl Into<String>, chains: &[Vec<u32>], time_us: u64) -> Self {
        let num_logical = chains.len();
        let num_physical_qubits = chains.iter().map(Vec::len).sum();
        let max_chain_length = chains.iter().map(Vec::len).max().unwrap_or(0);
        let mut chain_length_histogram = vec![0u64; max_chain_length];
        for c in chains {
            if !c.is_empty() {
                chain_length_histogram[c.len() - 1] += 1;
            }
        }
        let mean_chain_length = if num_logical == 0 {
            0.0
        } else {
            num_physical_qubits as f64 / num_logical as f64
        };
        Self {
            topology: topology.into(),
            num_logical,
            num_physical_qubits,
            max_chain_length,
            mean_chain_length,
            chain_length_histogram,
            time_us,
        }
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("topology", Json::from(self.topology.as_str())),
            ("num_logical", Json::from(self.num_logical)),
            ("num_physical_qubits", Json::from(self.num_physical_qubits)),
            ("max_chain_length", Json::from(self.max_chain_length)),
            ("mean_chain_length", Json::from(self.mean_chain_length)),
            (
                "chain_length_histogram",
                Json::Arr(
                    self.chain_length_histogram
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            ("time_us", Json::from(self.time_us)),
        ])
    }
}

/// Sampling-stage statistics: what the sampler did and what it found.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerStats {
    /// Sampler name, e.g. `"simulated-annealing"`.
    pub sampler: String,
    /// Wall-clock time of the sampling call, microseconds.
    pub time_us: u64,
    /// Total reads (restarts) taken.
    pub reads: u64,
    /// Distinct states observed across all reads.
    pub distinct_states: usize,
    /// Metropolis sweeps per read, when the sampler exposes it.
    pub sweeps: Option<u64>,
    /// Single-bit flips proposed, when the sampler counts them.
    pub proposals: Option<u64>,
    /// Proposals accepted, when the sampler counts them.
    pub accepted: Option<u64>,
    /// Replica lanes the sampler's bit-sliced kernel advances together
    /// per sweep (SA packs up to 64 reads into one word, PT its whole β
    /// ladder); `None` for single-configuration samplers (additive in
    /// schema v7).
    pub replicas: Option<u64>,
    /// `accepted / proposals`, when both counters exist.
    pub acceptance_rate: Option<f64>,
    /// Proposal throughput in moves/second, when the sampler timed its
    /// own run and counted proposals (additive in schema v3).
    pub proposals_per_sec: Option<f64>,
    /// Accepted-flip throughput in flips/second (additive in schema v3).
    pub flips_per_sec: Option<f64>,
    /// Lowest energy observed.
    pub best_energy: f64,
    /// Read-weighted mean energy.
    pub mean_energy: f64,
    /// Read-weighted standard deviation of energy.
    pub std_dev_energy: f64,
    /// Highest energy observed.
    pub max_energy: f64,
    /// Fraction of reads that hit the lowest observed energy (tol 1e-9).
    pub success_fraction: f64,
    /// Estimated time-to-target at 99% confidence, microseconds: expected
    /// wall-clock to observe the best-seen energy at least once with
    /// probability 0.99, extrapolated from this run's success fraction.
    /// `None` when the success fraction rounds to 0 or no reads were taken.
    pub tts99_us: Option<u64>,
}

impl SamplerStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::from);
        let opt_f64 = |v: Option<f64>| v.map_or(Json::Null, Json::from);
        Json::obj([
            ("sampler", Json::from(self.sampler.as_str())),
            ("time_us", Json::from(self.time_us)),
            ("reads", Json::from(self.reads)),
            ("distinct_states", Json::from(self.distinct_states)),
            ("sweeps", opt_u64(self.sweeps)),
            ("proposals", opt_u64(self.proposals)),
            ("accepted", opt_u64(self.accepted)),
            ("replicas", opt_u64(self.replicas)),
            ("acceptance_rate", opt_f64(self.acceptance_rate)),
            ("proposals_per_sec", opt_f64(self.proposals_per_sec)),
            ("flips_per_sec", opt_f64(self.flips_per_sec)),
            ("best_energy", Json::from(self.best_energy)),
            ("mean_energy", Json::from(self.mean_energy)),
            ("std_dev_energy", Json::from(self.std_dev_energy)),
            ("max_energy", Json::from(self.max_energy)),
            ("success_fraction", Json::from(self.success_fraction)),
            ("tts99_us", opt_u64(self.tts99_us)),
        ])
    }
}

/// Condensed formulation-linter counters (schema v2).
///
/// The full diagnostic list (messages, variables, metrics) lives in
/// `qsmt-lint`'s `LintReport`; the solve report carries only the
/// counters and the sorted set of distinct lint codes so dashboards can
/// alert on encoding regressions without parsing prose.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintStats {
    /// Wall-clock time of the lint pass, microseconds.
    pub time_us: u64,
    /// Error-severity findings (formulation likely unsound).
    pub errors: usize,
    /// Warning-severity findings (sound but fragile on hardware).
    pub warnings: usize,
    /// Info-severity findings (structural observations).
    pub infos: usize,
    /// Sorted, de-duplicated kebab-case lint codes present.
    pub codes: Vec<String>,
}

impl LintStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("time_us", Json::from(self.time_us)),
            ("errors", Json::from(self.errors)),
            ("warnings", Json::from(self.warnings)),
            ("infos", Json::from(self.infos)),
            (
                "codes",
                Json::Arr(self.codes.iter().map(|c| Json::from(c.as_str())).collect()),
            ),
        ])
    }
}

/// Post-selection statistics: how the decoded answer was chosen.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStats {
    /// Wall-clock time of decode + validation, microseconds.
    pub time_us: u64,
    /// Distinct states decoded before the search stopped.
    pub decoded_states: usize,
    /// Energy-order rank (0 = lowest) of the chosen valid sample;
    /// `None` when no sample validated.
    pub valid_rank: Option<usize>,
}

impl SelectStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("time_us", Json::from(self.time_us)),
            ("decoded_states", Json::from(self.decoded_states)),
            ("valid_rank", self.valid_rank.map_or(Json::Null, Json::from)),
        ])
    }
}

/// Solve-cache interaction of one solve (schema v5).
///
/// Present whenever the solver had a cache attached — including misses,
/// so dashboards can compute hit rates from reports alone. `None` (JSON
/// `null`) means the solver ran cache-less, which keeps the section
/// additive over v4 reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheStats {
    /// What the lookup found: `"exact-hit"` (cached sample set replayed,
    /// no sampling), `"warm-start"` (shape hit seeded a reverse anneal),
    /// or `"miss"` (cold solve, result inserted).
    pub outcome: String,
    /// Cache lookup latency, microseconds.
    pub lookup_us: u64,
    /// Sweeps the warm-started refinement ran; `None` unless the outcome
    /// is `"warm-start"`. Compare against the cold default (384) to see
    /// the warm-start saving.
    pub warm_sweeps: Option<u64>,
    /// Read budget of the solve that populated the replayed entry
    /// (always ≥ this job's budget — lookups never replay a smaller
    /// one); `None` unless the outcome is `"exact-hit"`.
    pub source_reads: Option<u64>,
    /// Seed of the solve that populated the replayed entry, so a replay
    /// under a different per-job seed is visible in the report; `None`
    /// unless the outcome is `"exact-hit"`.
    pub source_seed: Option<u64>,
}

impl CacheStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("outcome", Json::from(self.outcome.as_str())),
            ("lookup_us", Json::from(self.lookup_us)),
            (
                "warm_sweeps",
                self.warm_sweeps.map_or(Json::Null, Json::from),
            ),
            (
                "source_reads",
                self.source_reads.map_or(Json::Null, Json::from),
            ),
            (
                "source_seed",
                self.source_seed.map_or(Json::Null, Json::from),
            ),
        ])
    }
}

/// One portfolio member's run record (schema v9).
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioMemberStats {
    /// Stable member kind: `"exact"`, `"sa"`, `"sqa"`, or `"classical"`.
    pub member: String,
    /// Read budget the plan allotted (0 for exact/classical members).
    pub reads: u64,
    /// Sweep budget the plan allotted (0 for exact/classical members).
    pub sweeps: u64,
    /// How the race ended for this member: `"won"` (first valid answer),
    /// `"cancelled"` (stop flag tripped by the winner before it
    /// finished), or `"lost"` (finished on its own without winning).
    pub outcome: String,
    /// Wall-clock this member ran, microseconds.
    pub elapsed_us: u64,
    /// Whether this member's stop flag was tripped. A cancelled annealer
    /// reports `true`; the winner reports `true` only when another valid
    /// member crossed the line after it had already won.
    pub stopped: bool,
    /// Whether this member's own answer passed semantic validation.
    pub valid: bool,
}

impl PortfolioMemberStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("member", Json::from(self.member.as_str())),
            ("reads", Json::from(self.reads)),
            ("sweeps", Json::from(self.sweeps)),
            ("outcome", Json::from(self.outcome.as_str())),
            ("elapsed_us", Json::from(self.elapsed_us)),
            ("stopped", Json::from(self.stopped)),
            ("valid", Json::from(self.valid)),
        ])
    }
}

/// Portfolio-race record of one solve (schema v9).
///
/// Present when the solve raced a routed portfolio instead of running a
/// single sampler; `None` (JSON `null`) keeps the section additive over
/// v8 reports. See `docs/PORTFOLIO.md` for the routing rules and the
/// first-wins semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioStats {
    /// The routed plan: members, budgets, predicted winner, and the
    /// routing feature vector the decision was made from.
    pub plan: Json,
    /// Member kind the router predicted would win.
    pub predicted: String,
    /// Member kind that actually won (primary member when nothing
    /// validated).
    pub winner: String,
    /// Index of the winner within the plan's member list.
    pub winner_index: u64,
    /// Per-member run records, in plan order.
    pub members: Vec<PortfolioMemberStats>,
    /// Wall-clock of the whole race, microseconds.
    pub time_us: u64,
}

impl PortfolioStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("plan", self.plan.clone()),
            ("predicted", Json::from(self.predicted.as_str())),
            ("winner", Json::from(self.winner.as_str())),
            ("winner_index", Json::from(self.winner_index)),
            (
                "members",
                Json::Arr(
                    self.members
                        .iter()
                        .map(PortfolioMemberStats::to_json)
                        .collect(),
                ),
            ),
            ("time_us", Json::from(self.time_us)),
        ])
    }
}

/// Script-level abstract-interpretation statistics (schema v6).
///
/// Present when the absint pass ran over the script before any goal was
/// compiled; `None` (JSON `null`) means the pass was disabled, which
/// keeps the section additive over v5 reports. The full analysis
/// (certificate steps, domain summaries) is available via `qsmt lint
/// --format json`; the run report carries the routing-relevant summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsintStats {
    /// The verdict: `"unsat"` (refuted with a checkable certificate) or
    /// `"unknown"` (nothing refuted; tightenings may still apply).
    pub verdict: String,
    /// Wall-clock time of lowering + fixpoint, microseconds.
    pub time_us: u64,
    /// Fixpoint rounds until stabilization.
    pub iterations: u64,
    /// Domain-narrowing rule applications recorded during the fixpoint.
    pub domains_narrowed: u64,
    /// QUBO bit variables eliminated by applying tightenings (0 when
    /// the verdict is `"unsat"` — nothing is compiled).
    pub vars_eliminated: u64,
    /// Steps in the unsat certificate (0 when the verdict is
    /// `"unknown"`).
    pub certificate_steps: u64,
    /// The static routing feature vector (see `docs/ABSINT.md`).
    pub features: Json,
}

impl AbsintStats {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("verdict", Json::from(self.verdict.as_str())),
            ("time_us", Json::from(self.time_us)),
            ("iterations", Json::from(self.iterations)),
            ("domains_narrowed", Json::from(self.domains_narrowed)),
            ("vars_eliminated", Json::from(self.vars_eliminated)),
            ("certificate_steps", Json::from(self.certificate_steps)),
            ("features", self.features.clone()),
        ])
    }
}

/// One top-level stage timing within a solve, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name: one of `compile`, `lint`, `presolve`, `embed`,
    /// `sample`, `select`.
    pub label: String,
    /// Microseconds from solve start to stage start.
    pub start_us: u64,
    /// Stage duration, microseconds.
    pub dur_us: u64,
}

impl StageTiming {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("start_us", Json::from(self.start_us)),
            ("dur_us", Json::from(self.dur_us)),
        ])
    }
}

/// The full observability record of one constraint solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Human description of the solved constraint.
    pub constraint: String,
    /// The reported answer, rendered as text.
    pub solution: String,
    /// QUBO energy of the reported answer.
    pub energy: f64,
    /// Whether the answer passed semantic validation.
    pub valid: bool,
    /// End-to-end solve time, microseconds.
    pub total_us: u64,
    /// Ordered top-level stage timings.
    pub stages: Vec<StageTiming>,
    /// Compile-stage statistics.
    pub compile: CompileStats,
    /// Shape of the encoded QUBO.
    pub qubo: QuboShape,
    /// Presolve statistics.
    pub presolve: PresolveStats,
    /// Formulation-linter counters; `None` when linting was disabled
    /// (additive in schema v2, serialized as `null` when absent).
    pub lint: Option<LintStats>,
    /// Hardware-projection embedding statistics; `None` when the problem
    /// graph could not be embedded in the probe topology.
    pub embedding: Option<EmbeddingStats>,
    /// Sampling statistics.
    pub sampling: SamplerStats,
    /// Post-selection statistics.
    pub select: SelectStats,
    /// Solver-dynamics trajectory statistics; `None` when the sampler has
    /// no probes (additive in schema v4, serialized as `null` when absent).
    pub dynamics: Option<DynamicsStats>,
    /// Solve-cache interaction; `None` when no cache was attached
    /// (additive in schema v5, serialized as `null` when absent).
    pub cache: Option<CacheStats>,
    /// Portfolio-race record; `None` when the solve ran a single sampler
    /// (additive in schema v9, serialized as `null` when absent).
    pub portfolio: Option<PortfolioStats>,
    /// Raw span/event log recorded during the solve.
    pub spans: Vec<SpanRecord>,
}

impl SolveReport {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("constraint", Json::from(self.constraint.as_str())),
            ("solution", Json::from(self.solution.as_str())),
            ("energy", Json::from(self.energy)),
            ("valid", Json::from(self.valid)),
            ("total_us", Json::from(self.total_us)),
            (
                "stages",
                Json::Arr(self.stages.iter().map(StageTiming::to_json).collect()),
            ),
            ("compile", self.compile.to_json()),
            ("qubo", self.qubo.to_json()),
            ("presolve", self.presolve.to_json()),
            (
                "lint",
                self.lint.as_ref().map_or(Json::Null, LintStats::to_json),
            ),
            (
                "embedding",
                self.embedding
                    .as_ref()
                    .map_or(Json::Null, EmbeddingStats::to_json),
            ),
            ("sampling", self.sampling.to_json()),
            ("select", self.select.to_json()),
            (
                "dynamics",
                self.dynamics
                    .as_ref()
                    .map_or(Json::Null, DynamicsStats::to_json),
            ),
            (
                "cache",
                self.cache.as_ref().map_or(Json::Null, CacheStats::to_json),
            ),
            (
                "portfolio",
                self.portfolio
                    .as_ref()
                    .map_or(Json::Null, PortfolioStats::to_json),
            ),
            (
                "spans",
                Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
            ),
        ])
    }

    /// Multi-line human rendering — what `qsmt solve --stats` prints.
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "solve: {} → {:?} (energy {:.3}, valid: {})\n",
            self.constraint, self.solution, self.energy, self.valid
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<8} {:>10.3} ms\n",
                s.label,
                s.dur_us as f64 / 1000.0
            ));
        }
        out.push_str(&format!(
            "  qubo: {} vars, {} interactions, density {:.3}\n",
            self.qubo.num_vars, self.qubo.num_interactions, self.qubo.density
        ));
        out.push_str(&format!(
            "  presolve: fixed {}/{} vars\n",
            self.presolve.fixed_vars, self.presolve.original_vars
        ));
        if let Some(l) = &self.lint {
            out.push_str(&format!(
                "  lint: {} errors, {} warnings, {} info{}{}\n",
                l.errors,
                l.warnings,
                l.infos,
                if l.codes.is_empty() { "" } else { " — " },
                l.codes.join(", ")
            ));
        }
        if let Some(e) = &self.embedding {
            out.push_str(&format!(
                "  embedding: {} → {} qubits on {}, max chain {}\n",
                e.num_logical, e.num_physical_qubits, e.topology, e.max_chain_length
            ));
        }
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "  cache: {} ({} µs lookup{}{})\n",
                c.outcome,
                c.lookup_us,
                c.warm_sweeps
                    .map_or(String::new(), |s| format!(", {s} warm sweeps")),
                match (c.source_reads, c.source_seed) {
                    (Some(r), Some(s)) => format!(", from reads={r} seed={s}"),
                    _ => String::new(),
                }
            ));
        }
        if let Some(p) = &self.portfolio {
            let members: Vec<String> = p
                .members
                .iter()
                .map(|m| format!("{} {} ({} µs)", m.member, m.outcome, m.elapsed_us))
                .collect();
            out.push_str(&format!(
                "  portfolio: {} won (predicted {}) — {}\n",
                p.winner,
                p.predicted,
                members.join(", ")
            ));
        }
        let s = &self.sampling;
        out.push_str(&format!(
            "  sampling: {} reads via {}{}, best {:.3}, mean {:.3} ± {:.3}, success {:.1}%\n",
            s.reads,
            s.sampler,
            s.replicas
                .map_or(String::new(), |r| format!(" ({r} replicas/word)")),
            s.best_energy,
            s.mean_energy,
            s.std_dev_energy,
            s.success_fraction * 100.0
        ));
        if let (Some(p), Some(a), Some(r)) = (s.proposals, s.accepted, s.acceptance_rate) {
            out.push_str(&format!("  moves: {a}/{p} accepted ({:.1}%)\n", r * 100.0));
        }
        if let Some(pps) = s.proposals_per_sec {
            out.push_str(&format!(
                "  throughput: {:.2} Mprop/s{}\n",
                pps / 1e6,
                s.flips_per_sec
                    .map_or(String::new(), |f| format!(", {:.2} Mflip/s", f / 1e6))
            ));
        }
        if let Some(d) = &self.dynamics {
            out.push_str(&format!(
                "  dynamics: {} (last improvement at {:.0}% of run)\n",
                d.stall_verdict.as_str(),
                d.last_improvement_fraction * 100.0
            ));
            if let Some(h) = &d.proposal_latency_ns {
                out.push_str(&format!(
                    "  proposal latency: p50 {:.0} ns, p90 {:.0} ns, p99 {:.0} ns ({} sweeps)\n",
                    h.p50, h.p90, h.p99, h.count
                ));
            }
            if let Some(h) = &d.sweep_improvement {
                out.push_str(&format!(
                    "  energy gain/sweep: p50 {:.4}, p90 {:.4}, p99 {:.4}\n",
                    h.p50, h.p90, h.p99
                ));
            }
        }
        out.push_str(&format!(
            "  total: {:.3} ms\n",
            self.total_us as f64 / 1000.0
        ));
        out
    }
}

/// The kind of goal a [`GoalReport`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoalKind {
    /// A single string constraint.
    Constraint,
    /// A sequential multi-step pipeline (§4.12).
    Pipeline,
    /// An integer index query (indexof / length).
    IndexQuery,
}

impl GoalKind {
    /// Stable string form used in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            GoalKind::Constraint => "constraint",
            GoalKind::Pipeline => "pipeline",
            GoalKind::IndexQuery => "index-query",
        }
    }
}

/// Observability record for one script goal (declared variable).
#[derive(Debug, Clone, PartialEq)]
pub struct GoalReport {
    /// The declared variable this goal solves for.
    pub name: String,
    /// What kind of goal it was.
    pub kind: GoalKind,
    /// The model value assigned, rendered as text.
    pub answer: String,
    /// Whether every solve in this goal validated.
    pub valid: bool,
    /// Total goal time, microseconds.
    pub total_us: u64,
    /// One report per solver invocation (pipelines have several).
    pub solves: Vec<SolveReport>,
}

impl GoalReport {
    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("kind", Json::from(self.kind.as_str())),
            ("answer", Json::from(self.answer.as_str())),
            ("valid", Json::from(self.valid)),
            ("total_us", Json::from(self.total_us)),
            (
                "solves",
                Json::Arr(self.solves.iter().map(SolveReport::to_json).collect()),
            ),
        ])
    }
}

/// The top-level run report written by `qsmt solve --report <path>`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Report schema version; bumped on breaking field changes.
    pub schema_version: u32,
    /// Where the problem came from (file path or `"<demo>"`).
    pub source: String,
    /// The check-sat verdict (`sat` / `unsat` / `unknown`).
    pub status: String,
    /// Sampler used for every solve in the run.
    pub sampler: String,
    /// Where the answers came from: `"cache"` when every solve in the run
    /// was an exact cache hit (no sampling anywhere), `"solver"`
    /// otherwise (additive in schema v5).
    pub served_from: String,
    /// End-to-end wall-clock for the run, microseconds.
    pub elapsed_us: u64,
    /// Script-level abstract-interpretation summary; `None` when the
    /// pass was disabled (additive in schema v6, serialized as `null`
    /// when absent).
    pub absint: Option<AbsintStats>,
    /// End-to-end trace identifier (additive in schema v8). Serialized
    /// as a 16-hex-digit **string** (`null` when absent) because JSON
    /// numbers here are `f64` and cannot round-trip 64-bit ids. The
    /// same id addresses `GET /jobs/<id>/trace` on a serve instance.
    pub trace_id: Option<u64>,
    /// Per-goal reports in declaration order.
    pub goals: Vec<GoalReport>,
}

impl RunReport {
    /// Current schema version. v2 added the additive `lint` field on
    /// `SolveReport` (and the `lint` stage label); v3 added the additive
    /// `proposals_per_sec` / `flips_per_sec` throughput fields on
    /// `sampling`; v4 added the additive `dynamics` section (trajectory
    /// probes: energy trace, per-β acceptance, swap/ESS stats, stall
    /// verdict); v5 adds the additive `cache` section on `SolveReport`
    /// (lookup outcome and warm-start sweeps) and `served_from` on the
    /// run; v6 adds the additive `absint` section on the run (script
    /// abstract-interpretation verdict, fixpoint accounting, eliminated
    /// variables, certificate size, and routing features) and the
    /// `"absint"` value for `served_from`; v7 adds the additive
    /// `replicas` field on `sampling` (bit-sliced multi-replica kernel
    /// batch width, `null` for single-configuration samplers); v8 adds
    /// the additive `trace_id` field (16-hex-digit string, `null` when
    /// tracing was off) and the computed `span_us` per-stage rollup
    /// object consumed by the `qsmt history` run store; v9 adds the
    /// additive `portfolio` section on `SolveReport` (routed plan,
    /// per-member outcome/elapsed, winner) and the
    /// `"portfolio:<member>"` value for `served_from`. Earlier readers
    /// keep working because no existing field changed.
    pub const SCHEMA_VERSION: u32 = 9;

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(self.schema_version)),
            ("source", Json::from(self.source.as_str())),
            ("status", Json::from(self.status.as_str())),
            ("sampler", Json::from(self.sampler.as_str())),
            ("served_from", Json::from(self.served_from.as_str())),
            ("elapsed_us", Json::from(self.elapsed_us)),
            (
                "absint",
                self.absint
                    .as_ref()
                    .map_or(Json::Null, AbsintStats::to_json),
            ),
            (
                "trace_id",
                self.trace_id
                    .map_or(Json::Null, |id| Json::from(format!("{id:016x}"))),
            ),
            ("span_us", self.span_us_rollup()),
            (
                "goals",
                Json::Arr(self.goals.iter().map(GoalReport::to_json).collect()),
            ),
        ])
    }

    /// Total microseconds per stage label, summed across every solve of
    /// every goal — the flat per-stage rollup (`span_us`, additive in
    /// schema v8) that the run-history store aggregates percentiles
    /// over without walking the nested goal/solve/stage tree.
    pub fn span_us_rollup(&self) -> Json {
        let mut rollup = std::collections::BTreeMap::new();
        for goal in &self.goals {
            for solve in &goal.solves {
                for stage in &solve.stages {
                    *rollup.entry(stage.label.clone()).or_insert(0u64) += stage.dur_us;
                }
            }
        }
        Json::Obj(
            rollup
                .into_iter()
                .map(|(label, us)| (label, Json::from(us)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_report() -> SolveReport {
        SolveReport {
            constraint: "reverse(\"hello\")".into(),
            solution: "olleh".into(),
            energy: 0.0,
            valid: true,
            total_us: 1500,
            stages: vec![
                StageTiming {
                    label: "compile".into(),
                    start_us: 0,
                    dur_us: 100,
                },
                StageTiming {
                    label: "sample".into(),
                    start_us: 100,
                    dur_us: 1200,
                },
            ],
            compile: CompileStats {
                constraint: "reverse(\"hello\")".into(),
                encoding: "reverse".into(),
                time_us: 100,
            },
            qubo: QuboShape {
                num_vars: 40,
                num_interactions: 0,
                density: 0.0,
                offset: 200.0,
                max_abs_coefficient: 10.0,
            },
            presolve: PresolveStats {
                time_us: 5,
                original_vars: 40,
                fixed_vars: 40,
                reduced_vars: 0,
                reduction_ratio: 1.0,
            },
            lint: Some(LintStats {
                time_us: 3,
                errors: 0,
                warnings: 1,
                infos: 2,
                codes: vec!["dead-variable".into(), "presolve-fixable".into()],
            }),
            embedding: Some(EmbeddingStats::from_chains(
                "chimera-2x2x4",
                &[vec![0], vec![1, 2], vec![3]],
                42,
            )),
            sampling: SamplerStats {
                sampler: "simulated-annealing".into(),
                time_us: 1200,
                reads: 64,
                distinct_states: 3,
                sweeps: Some(384),
                proposals: Some(1000),
                accepted: Some(400),
                replicas: Some(64),
                acceptance_rate: Some(0.4),
                proposals_per_sec: Some(2.5e6),
                flips_per_sec: Some(1.0e6),
                best_energy: 0.0,
                mean_energy: 0.5,
                std_dev_energy: 0.1,
                max_energy: 2.0,
                success_fraction: 0.9,
                tts99_us: Some(30),
            },
            select: SelectStats {
                time_us: 10,
                decoded_states: 1,
                valid_rank: Some(0),
            },
            dynamics: Some(sample_dynamics()),
            cache: Some(CacheStats {
                outcome: "warm-start".into(),
                lookup_us: 12,
                warm_sweeps: Some(96),
                source_reads: None,
                source_seed: None,
            }),
            portfolio: Some(PortfolioStats {
                plan: Json::obj([("predicted_winner", Json::from("exact"))]),
                predicted: "exact".into(),
                winner: "exact".into(),
                winner_index: 0,
                members: vec![
                    PortfolioMemberStats {
                        member: "exact".into(),
                        reads: 0,
                        sweeps: 0,
                        outcome: "won".into(),
                        elapsed_us: 120,
                        stopped: false,
                        valid: true,
                    },
                    PortfolioMemberStats {
                        member: "sa".into(),
                        reads: 256,
                        sweeps: 4096,
                        outcome: "cancelled".into(),
                        elapsed_us: 340,
                        stopped: true,
                        valid: false,
                    },
                ],
                time_us: 360,
            }),
            spans: vec![],
        }
    }

    fn sample_dynamics() -> DynamicsStats {
        let energy_trace = vec![
            crate::dynamics::TracePoint {
                sweep: 0,
                best_energy: 8.0,
            },
            crate::dynamics::TracePoint {
                sweep: 100,
                best_energy: 0.0,
            },
            crate::dynamics::TracePoint {
                sweep: 384,
                best_energy: 0.0,
            },
        ];
        DynamicsStats {
            time_to_target: DynamicsStats::time_to_target_curve(&energy_trace),
            last_improvement_fraction: DynamicsStats::last_improvement_fraction(&energy_trace),
            stall_verdict: crate::dynamics::StallVerdict::Converged,
            energy_trace,
            beta_acceptance: vec![crate::dynamics::BetaAcceptance {
                beta: 0.1,
                proposals: 640,
                accepted: 320,
            }],
            swap_acceptance: vec![],
            ess_trace: vec![],
            aspiration_hits: None,
            proposal_latency_ns: crate::dynamics::HistogramSummary::from_samples(&[
                50.0, 60.0, 70.0,
            ]),
            sweep_improvement: crate::dynamics::HistogramSummary::from_samples(&[0.0, 0.5, 1.0]),
        }
    }

    #[test]
    fn embedding_stats_from_chains() {
        let e = EmbeddingStats::from_chains("t", &[vec![0], vec![1, 2], vec![3]], 9);
        assert_eq!(e.num_logical, 3);
        assert_eq!(e.num_physical_qubits, 4);
        assert_eq!(e.max_chain_length, 2);
        assert!((e.mean_chain_length - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.chain_length_histogram, vec![2, 1]);
    }

    #[test]
    fn solve_report_round_trips_through_json() {
        let r = sample_report();
        let doc = parse(&r.to_json().pretty()).expect("valid JSON");
        assert_eq!(
            doc.get("constraint").and_then(Json::as_str),
            Some("reverse(\"hello\")")
        );
        assert_eq!(doc.get("valid").and_then(Json::as_bool), Some(true));
        let stages = doc.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages.len(), 2);
        let sampling = doc.get("sampling").unwrap();
        assert_eq!(sampling.get("reads").and_then(Json::as_u64), Some(64));
        assert_eq!(
            sampling.get("acceptance_rate").and_then(Json::as_f64),
            Some(0.4)
        );
        let embedding = doc.get("embedding").unwrap();
        assert_eq!(
            embedding.get("max_chain_length").and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn lint_stats_serialize_with_codes() {
        let r = sample_report();
        let doc = parse(&r.to_json().pretty()).unwrap();
        let lint = doc.get("lint").unwrap();
        assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
        assert_eq!(lint.get("warnings").and_then(Json::as_u64), Some(1));
        let codes = lint.get("codes").and_then(Json::as_arr).unwrap();
        assert_eq!(codes[0].as_str(), Some("dead-variable"));
        let text = r.render_stats();
        assert!(text.contains("lint: 0 errors, 1 warnings, 2 info"));
    }

    #[test]
    fn optional_fields_serialize_as_null() {
        let mut r = sample_report();
        r.embedding = None;
        r.sampling.proposals = None;
        r.select.valid_rank = None;
        r.lint = None;
        r.cache = None;
        r.portfolio = None;
        let j = r.to_json();
        assert_eq!(j.get("lint"), Some(&Json::Null));
        assert_eq!(j.get("embedding"), Some(&Json::Null));
        assert_eq!(j.get("cache"), Some(&Json::Null));
        assert_eq!(j.get("portfolio"), Some(&Json::Null));
        assert_eq!(
            j.get("sampling").unwrap().get("proposals"),
            Some(&Json::Null)
        );
        assert_eq!(
            j.get("select").unwrap().get("valid_rank"),
            Some(&Json::Null)
        );
    }

    #[test]
    fn run_report_nests_goals_and_solves() {
        let run = RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            source: "x.smt2".into(),
            status: "sat".into(),
            sampler: "simulated-annealing".into(),
            served_from: "solver".into(),
            elapsed_us: 2000,
            absint: Some(AbsintStats {
                verdict: "unknown".into(),
                time_us: 40,
                iterations: 2,
                domains_narrowed: 3,
                vars_eliminated: 14,
                certificate_steps: 0,
                features: Json::obj([("string_vars", Json::from(1u64))]),
            }),
            trace_id: Some(0x00ab_cdef_0123_4567),
            goals: vec![GoalReport {
                name: "x".into(),
                kind: GoalKind::Pipeline,
                answer: "olleh".into(),
                valid: true,
                total_us: 1500,
                solves: vec![sample_report()],
            }],
        };
        let doc = parse(&run.to_json().pretty()).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(u64::from(RunReport::SCHEMA_VERSION))
        );
        assert_eq!(
            doc.get("trace_id").and_then(Json::as_str),
            Some("00abcdef01234567")
        );
        // The flat rollup sums the nested stage timings by label.
        let span_us = doc.get("span_us").unwrap();
        assert_eq!(span_us.get("compile").and_then(Json::as_u64), Some(100));
        assert_eq!(span_us.get("sample").and_then(Json::as_u64), Some(1200));
        assert_eq!(
            doc.get("served_from").and_then(Json::as_str),
            Some("solver")
        );
        let goals = doc.get("goals").and_then(Json::as_arr).unwrap();
        assert_eq!(
            goals[0].get("kind").and_then(Json::as_str),
            Some("pipeline")
        );
        assert_eq!(
            goals[0].get("solves").and_then(Json::as_arr).unwrap().len(),
            1
        );
    }

    #[test]
    fn schema_v6_is_additive_over_v5() {
        // A v5-shaped run (no absint section) still serializes every key
        // with `absint` as null; a v6 run keeps every v5 key.
        let run = |absint: Option<AbsintStats>| RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            source: "x.smt2".into(),
            status: "unsat".into(),
            sampler: "simulated-annealing".into(),
            served_from: "absint".into(),
            elapsed_us: 120,
            absint,
            trace_id: None,
            goals: vec![],
        };
        let v5_doc = parse(&run(None).to_json().pretty()).unwrap();
        assert_eq!(v5_doc.get("absint"), Some(&Json::Null));
        let v6 = run(Some(AbsintStats {
            verdict: "unsat".into(),
            time_us: 55,
            iterations: 2,
            domains_narrowed: 4,
            vars_eliminated: 0,
            certificate_steps: 3,
            features: Json::obj([("assertions", Json::from(2u64))]),
        }));
        let v6_doc = parse(&v6.to_json().pretty()).unwrap();
        let (Json::Obj(v5_map), Json::Obj(v6_map)) = (&v5_doc, &v6_doc) else {
            panic!("reports serialize as objects");
        };
        for key in v5_map.keys() {
            assert!(v6_map.contains_key(key), "v6 dropped v5 key {key}");
        }
        let absint = v6_doc.get("absint").unwrap();
        assert_eq!(absint.get("verdict").and_then(Json::as_str), Some("unsat"));
        assert_eq!(
            absint.get("certificate_steps").and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            absint
                .get("features")
                .and_then(|f| f.get("assertions"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            v6_doc.get("served_from").and_then(Json::as_str),
            Some("absint")
        );
    }

    #[test]
    fn schema_v7_is_additive_over_v6() {
        // A v6-shaped report (no replicas counter) still serializes every
        // key with `replicas` as null; a v7 report keeps every v6 key and
        // surfaces the batch width in the --stats sampling line.
        let mut v6 = sample_report();
        v6.sampling.replicas = None;
        let v6_doc = parse(&v6.to_json().pretty()).unwrap();
        assert_eq!(
            v6_doc.get("sampling").unwrap().get("replicas"),
            Some(&Json::Null)
        );
        let v7_doc = parse(&sample_report().to_json().pretty()).unwrap();
        let (Some(Json::Obj(v6_map)), Some(Json::Obj(v7_map))) =
            (v6_doc.get("sampling"), v7_doc.get("sampling"))
        else {
            panic!("sampling serializes as an object");
        };
        for key in v6_map.keys() {
            assert!(v7_map.contains_key(key), "v7 dropped v6 key {key}");
        }
        assert_eq!(
            v7_doc
                .get("sampling")
                .unwrap()
                .get("replicas")
                .and_then(Json::as_u64),
            Some(64)
        );
        let text = sample_report().render_stats();
        assert!(text.contains("(64 replicas/word)"), "{text}");
        assert!(!v6.render_stats().contains("replicas/word"));
    }

    #[test]
    fn schema_v8_is_additive_over_v7() {
        // A v7-shaped run (tracing off) still serializes every key with
        // `trace_id` as null and an empty `span_us` rollup; a v8 run
        // keeps every v7 key and adds the hex trace id.
        let run = |trace_id: Option<u64>, goals: Vec<GoalReport>| RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            source: "x.smt2".into(),
            status: "sat".into(),
            sampler: "simulated-annealing".into(),
            served_from: "solver".into(),
            elapsed_us: 2000,
            absint: None,
            trace_id,
            goals,
        };
        let goal = GoalReport {
            name: "x".into(),
            kind: GoalKind::Constraint,
            answer: "olleh".into(),
            valid: true,
            total_us: 1500,
            solves: vec![sample_report()],
        };
        let v7_doc = parse(&run(None, vec![]).to_json().pretty()).unwrap();
        assert_eq!(v7_doc.get("trace_id"), Some(&Json::Null));
        assert_eq!(v7_doc.get("span_us"), Some(&Json::Obj(Default::default())));
        let v8_doc = parse(&run(Some(0xdead_beef), vec![goal]).to_json().pretty()).unwrap();
        let (Json::Obj(v7_map), Json::Obj(v8_map)) = (&v7_doc, &v8_doc) else {
            panic!("reports serialize as objects");
        };
        for key in v7_map.keys() {
            assert!(v8_map.contains_key(key), "v8 dropped v7 key {key}");
        }
        assert_eq!(
            v8_doc.get("trace_id").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        let span_us = v8_doc.get("span_us").unwrap();
        assert_eq!(span_us.get("compile").and_then(Json::as_u64), Some(100));
        assert_eq!(span_us.get("sample").and_then(Json::as_u64), Some(1200));
    }

    #[test]
    fn schema_v9_is_additive_over_v8() {
        // A v8-shaped solve (no portfolio race) still serializes every
        // key with `portfolio` as null; a v9 solve keeps every v8 key
        // and nests the plan, per-member records, and winner.
        let mut v8 = sample_report();
        v8.portfolio = None;
        let v8_doc = parse(&v8.to_json().pretty()).unwrap();
        assert_eq!(v8_doc.get("portfolio"), Some(&Json::Null));
        let v9_doc = parse(&sample_report().to_json().pretty()).unwrap();
        let (Json::Obj(v8_map), Json::Obj(v9_map)) = (&v8_doc, &v9_doc) else {
            panic!("reports serialize as objects");
        };
        for key in v8_map.keys() {
            assert!(v9_map.contains_key(key), "v9 dropped v8 key {key}");
        }
        let p = v9_doc.get("portfolio").unwrap();
        assert_eq!(p.get("winner").and_then(Json::as_str), Some("exact"));
        assert_eq!(p.get("predicted").and_then(Json::as_str), Some("exact"));
        assert_eq!(p.get("winner_index").and_then(Json::as_u64), Some(0));
        let members = p.get("members").and_then(Json::as_arr).unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[0].get("outcome").and_then(Json::as_str),
            Some("won")
        );
        assert_eq!(
            members[1].get("outcome").and_then(Json::as_str),
            Some("cancelled")
        );
        assert_eq!(
            members[1].get("stopped").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            p.get("plan")
                .and_then(|j| j.get("predicted_winner"))
                .and_then(Json::as_str),
            Some("exact")
        );
        let text = sample_report().render_stats();
        assert!(
            text.contains("portfolio: exact won (predicted exact)"),
            "{text}"
        );
        assert!(text.contains("sa cancelled"), "{text}");
        assert!(!v8.render_stats().contains("portfolio:"));
    }

    #[test]
    fn throughput_fields_serialize_and_render() {
        let r = sample_report();
        let doc = parse(&r.to_json().pretty()).unwrap();
        let sampling = doc.get("sampling").unwrap();
        assert_eq!(
            sampling.get("proposals_per_sec").and_then(Json::as_f64),
            Some(2.5e6)
        );
        assert_eq!(
            sampling.get("flips_per_sec").and_then(Json::as_f64),
            Some(1.0e6)
        );
        assert!(r
            .render_stats()
            .contains("throughput: 2.50 Mprop/s, 1.00 Mflip/s"));
        let mut quiet = sample_report();
        quiet.sampling.proposals_per_sec = None;
        quiet.sampling.flips_per_sec = None;
        assert!(!quiet.render_stats().contains("throughput"));
    }

    #[test]
    fn schema_v4_is_additive_over_v3() {
        // A v3-shaped report (no dynamics) still serializes every v3 key
        // with `dynamics` as null; a v4 report keeps every v3 key.
        let mut v3 = sample_report();
        v3.dynamics = None;
        let v3_doc = parse(&v3.to_json().pretty()).unwrap();
        assert_eq!(v3_doc.get("dynamics"), Some(&Json::Null));
        let v4_doc = parse(&sample_report().to_json().pretty()).unwrap();
        let (Json::Obj(v3_map), Json::Obj(v4_map)) = (&v3_doc, &v4_doc) else {
            panic!("reports serialize as objects");
        };
        for key in v3_map.keys() {
            assert!(v4_map.contains_key(key), "v4 dropped v3 key {key}");
        }
        let dynamics = v4_doc.get("dynamics").unwrap();
        assert_eq!(
            dynamics.get("stall_verdict").and_then(Json::as_str),
            Some("converged")
        );
        let betas = dynamics
            .get("beta_acceptance")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(betas[0].get("accepted").and_then(Json::as_u64), Some(320));
    }

    #[test]
    fn schema_v5_is_additive_over_v4() {
        // A v4-shaped report (no cache section) still serializes every
        // key with `cache` as null; a v5 report keeps every v4 key.
        let mut v4 = sample_report();
        v4.cache = None;
        let v4_doc = parse(&v4.to_json().pretty()).unwrap();
        assert_eq!(v4_doc.get("cache"), Some(&Json::Null));
        let v5_doc = parse(&sample_report().to_json().pretty()).unwrap();
        let (Json::Obj(v4_map), Json::Obj(v5_map)) = (&v4_doc, &v5_doc) else {
            panic!("reports serialize as objects");
        };
        for key in v4_map.keys() {
            assert!(v5_map.contains_key(key), "v5 dropped v4 key {key}");
        }
        let cache = v5_doc.get("cache").unwrap();
        assert_eq!(
            cache.get("outcome").and_then(Json::as_str),
            Some("warm-start")
        );
        assert_eq!(cache.get("warm_sweeps").and_then(Json::as_u64), Some(96));
        assert_eq!(cache.get("source_reads"), Some(&Json::Null));
        assert_eq!(cache.get("source_seed"), Some(&Json::Null));
        let text = sample_report().render_stats();
        assert!(text.contains("cache: warm-start"), "{text}");
        assert!(text.contains("96 warm sweeps"), "{text}");

        // Exact hits disclose the originating solve's configuration.
        let mut hit = sample_report();
        hit.cache = Some(CacheStats {
            outcome: "exact-hit".into(),
            lookup_us: 3,
            warm_sweeps: None,
            source_reads: Some(1024),
            source_seed: Some(7),
        });
        let hit_doc = parse(&hit.to_json().pretty()).unwrap();
        let hit_cache = hit_doc.get("cache").unwrap();
        assert_eq!(
            hit_cache.get("source_reads").and_then(Json::as_u64),
            Some(1024)
        );
        assert_eq!(hit_cache.get("source_seed").and_then(Json::as_u64), Some(7));
        assert!(
            hit.render_stats().contains("from reads=1024 seed=7"),
            "{}",
            hit.render_stats()
        );
    }

    #[test]
    fn render_stats_includes_dynamics_histograms() {
        let text = sample_report().render_stats();
        assert!(text.contains("dynamics: converged"), "{text}");
        assert!(text.contains("proposal latency: p50 60 ns"), "{text}");
        assert!(text.contains("energy gain/sweep: p50 0.5000"), "{text}");
        let mut quiet = sample_report();
        quiet.dynamics = None;
        assert!(!quiet.render_stats().contains("dynamics:"));
    }

    #[test]
    fn render_stats_mentions_stages_and_counters() {
        let text = sample_report().render_stats();
        assert!(text.contains("compile"));
        assert!(text.contains("sampling: 64 reads"));
        assert!(text.contains("accepted (40.0%)"));
        assert!(text.contains("embedding: 3 → 4 qubits"));
    }
}
