//! Property-based tests for the canonical model fingerprint: insertion
//! order and argument order never move the hash, the shape key is blind
//! to coefficients, and the exact key is not.

use proptest::prelude::*;
use qsmt_qubo::QuboModel;

/// Raw term lists (not a built model), so the same terms can be replayed
/// in different orders.
#[derive(Debug, Clone)]
struct Terms {
    num_vars: usize,
    linear: Vec<(u32, f64)>,
    quadratic: Vec<(u32, u32, f64)>,
    offset: f64,
}

impl Terms {
    fn build(&self, order: &[usize]) -> QuboModel {
        let mut m = QuboModel::new(self.num_vars);
        m.add_offset(self.offset);
        // `order` is a permutation over linear ++ quadratic term slots.
        for &slot in order {
            if slot < self.linear.len() {
                let (i, v) = self.linear[slot];
                m.add_linear(i, v);
            } else {
                let (i, j, v) = self.quadratic[slot - self.linear.len()];
                m.add_quadratic(i, j, v);
            }
        }
        m
    }

    fn len(&self) -> usize {
        self.linear.len() + self.quadratic.len()
    }
}

fn arb_terms() -> impl Strategy<Value = Terms> {
    let linear = proptest::collection::vec((0u32..8, -4.0f64..4.0), 0..=8);
    let quads = proptest::collection::vec((0u32..8, 0u32..8, 0.25f64..4.0), 0..=12);
    let offset = -2.0f64..2.0;
    (linear, quads, offset).prop_map(|(linear, quads, offset)| Terms {
        num_vars: 8,
        // Keep quadratic coefficients bounded away from zero so distinct
        // insertion orders cannot cancel an edge that another order keeps.
        quadratic: quads.into_iter().filter(|&(i, j, _)| i != j).collect(),
        linear,
        offset,
    })
}

fn shuffled(len: usize, seed: u64) -> Vec<usize> {
    // Deterministic Fisher–Yates on a splitmix stream: proptest supplies
    // the seed, so shrinking stays reproducible.
    let mut order: Vec<usize> = (0..len).collect();
    let mut z = seed;
    for k in (1..len).rev() {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        order.swap(k, (x % (k as u64 + 1)) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insertion_order_never_moves_the_fingerprint(t in arb_terms(), seed in 0u64..u64::MAX) {
        let forward = t.build(&(0..t.len()).collect::<Vec<_>>());
        let permuted = t.build(&shuffled(t.len(), seed));
        prop_assert_eq!(forward.fingerprint(), permuted.fingerprint());
    }

    #[test]
    fn quadratic_argument_order_is_irrelevant(t in arb_terms()) {
        let a = t.build(&(0..t.len()).collect::<Vec<_>>());
        let mut swapped = t.clone();
        for term in &mut swapped.quadratic {
            *term = (term.1, term.0, term.2);
        }
        let b = swapped.build(&(0..t.len()).collect::<Vec<_>>());
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn shape_is_coefficient_blind_exact_is_not(t in arb_terms(), scale in 2.0f64..5.0) {
        let base = t.build(&(0..t.len()).collect::<Vec<_>>());
        let mut rescaled = base.clone();
        rescaled.scale(scale);
        let (a, b) = (base.fingerprint(), rescaled.fingerprint());
        // Same adjacency structure ⇒ same shape key, always.
        prop_assert_eq!(a.shape, b.shape);
        // Any model with at least one term moves its exact key under a
        // >1 rescale (coefficient bits change).
        if base.num_interactions() > 0
            || base.linear_terms().iter().any(|&c| c != 0.0)
            || base.offset() != 0.0
        {
            prop_assert_ne!(a.exact, b.exact);
        }
    }

    #[test]
    fn equal_fingerprints_for_equal_models_rebuilt_from_scratch(t in arb_terms()) {
        // Rebuilding the identical model in a fresh process-independent
        // way (same sorted terms) reproduces the hash: the in-test proxy
        // for the documented cross-run stability guarantee.
        let a = t.build(&(0..t.len()).collect::<Vec<_>>());
        let b = t.build(&(0..t.len()).collect::<Vec<_>>());
        let dup = a.clone();
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.fingerprint(), dup.fingerprint());
    }

    #[test]
    fn dropping_an_edge_moves_the_shape(t in arb_terms()) {
        prop_assume!(!t.quadratic.is_empty());
        let full = t.build(&(0..t.len()).collect::<Vec<_>>());
        let mut trimmed = t;
        let removed = trimmed.quadratic.pop().expect("non-empty");
        let slim = trimmed.build(&(0..trimmed.len()).collect::<Vec<_>>());
        // Only assert when the dropped term was the sole contribution to
        // that edge (otherwise the edge survives with a new coefficient).
        let duplicated = trimmed.quadratic.iter().any(|&(i, j, _)| {
            (i.min(j), i.max(j)) == (removed.0.min(removed.1), removed.0.max(removed.1))
        });
        if !duplicated {
            prop_assert_ne!(full.fingerprint().shape, slim.fingerprint().shape);
        }
    }
}
