//! §4.12 Combining constraints: strictly sequential solving.
//!
//! "We perform each operation sequentially. … we then will take the output
//! solution of the first iteration of our solver, and pass it through as
//! the input to the second solver." A [`Pipeline`] starts from either a
//! literal string or a generation constraint (palindrome, regex, …) and
//! threads the decoded output through a chain of transformation steps,
//! each compiled and solved as its own QUBO.

use crate::constraint::Constraint;
use crate::error::ConstraintError;
use crate::solver::{SolveOutcome, StringSolver};

/// Where the pipeline's initial string comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum Start {
    /// A known input string (most Table 1 rows).
    Literal(String),
    /// The solved output of a generation constraint (e.g. generate a
    /// palindrome, then transform it).
    Generate(Constraint),
}

/// One string-to-string transformation step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// §4.9 — reverse the current string.
    Reverse,
    /// §4.7 — replace all occurrences of a character.
    ReplaceAll {
        /// Character to replace.
        from: char,
        /// Replacement.
        to: char,
    },
    /// §4.8 — replace the first occurrence of a character.
    ReplaceFirst {
        /// Character to replace.
        from: char,
        /// Replacement.
        to: char,
    },
    /// §4.2 — append a suffix (with an optional separator, matching the
    /// paper's space-joined concat examples).
    Append {
        /// The string appended after the current value.
        suffix: String,
        /// Separator inserted between them.
        separator: String,
    },
}

impl Step {
    /// Lowers the step to a constraint over the current string.
    pub fn to_constraint(&self, input: &str) -> Constraint {
        match self {
            Step::Reverse => Constraint::Reverse {
                input: input.to_string(),
            },
            Step::ReplaceAll { from, to } => Constraint::ReplaceAll {
                input: input.to_string(),
                from: *from,
                to: *to,
            },
            Step::ReplaceFirst { from, to } => Constraint::ReplaceFirst {
                input: input.to_string(),
                from: *from,
                to: *to,
            },
            Step::Append { suffix, separator } => Constraint::Concat {
                parts: vec![input.to_string(), suffix.clone()],
                separator: separator.clone(),
            },
        }
    }
}

/// A sequential multi-constraint solve (paper §4.12).
///
/// ```
/// use qsmt_core::{Pipeline, Start, Step, StringSolver};
///
/// // Table 1 row 1: reverse "hello", then replace 'e' with 'a'.
/// let report = Pipeline::new(Start::Literal("hello".into()))
///     .then(Step::Reverse)
///     .then(Step::ReplaceAll { from: 'e', to: 'a' })
///     .run(&StringSolver::with_defaults().with_seed(1))
///     .unwrap();
/// assert_eq!(report.final_text, "ollah");
/// assert!(report.all_valid());
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    start: Start,
    steps: Vec<Step>,
}

impl Pipeline {
    /// Starts a pipeline.
    pub fn new(start: Start) -> Self {
        Self {
            start,
            steps: Vec::new(),
        }
    }

    /// Appends a transformation step.
    pub fn then(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }

    /// Number of solver invocations this pipeline will perform.
    pub fn num_stages(&self) -> usize {
        let start_solves = matches!(self.start, Start::Generate(_)) as usize;
        start_solves + self.steps.len()
    }

    /// Runs every stage through the solver, threading decoded outputs.
    ///
    /// # Errors
    /// Propagates the first encoding failure. A stage whose decoded output
    /// fails semantic validation still feeds the next stage (and is
    /// reported in the per-stage outcomes), matching the paper's
    /// best-effort sequential composition.
    pub fn run(&self, solver: &StringSolver) -> Result<PipelineReport, ConstraintError> {
        let mut stages: Vec<StageReport> = Vec::with_capacity(self.num_stages());
        let mut current: String = match &self.start {
            Start::Literal(s) => s.clone(),
            Start::Generate(c) => {
                let outcome = solver.solve(c)?;
                let text = outcome.solution.as_text().unwrap_or_default().to_string();
                stages.push(StageReport {
                    constraint: c.clone(),
                    output: text.clone(),
                    valid: outcome.valid,
                    energy: outcome.energy,
                    outcome,
                });
                text
            }
        };
        for step in &self.steps {
            let constraint = step.to_constraint(&current);
            let outcome = solver.solve(&constraint)?;
            let text = outcome.solution.as_text().unwrap_or_default().to_string();
            stages.push(StageReport {
                constraint,
                output: text.clone(),
                valid: outcome.valid,
                energy: outcome.energy,
                outcome,
            });
            current = text;
        }
        Ok(PipelineReport {
            final_text: current,
            stages,
        })
    }
}

impl Pipeline {
    /// Like [`Pipeline::run`], additionally returning the Figure 1 stage
    /// trace of every solver invocation — the multi-stage view of the
    /// paper's §4.12 sequential composition.
    ///
    /// # Errors
    /// Propagates the first encoding failure.
    pub fn run_traced(
        &self,
        solver: &StringSolver,
    ) -> Result<(PipelineReport, Vec<crate::SolveTrace>), ConstraintError> {
        let mut stages: Vec<StageReport> = Vec::with_capacity(self.num_stages());
        let mut traces = Vec::with_capacity(self.num_stages());
        let mut current: String = match &self.start {
            Start::Literal(s) => s.clone(),
            Start::Generate(c) => {
                let (outcome, trace) = solver.solve_traced(c)?;
                traces.push(trace);
                let text = outcome.solution.as_text().unwrap_or_default().to_string();
                stages.push(StageReport {
                    constraint: c.clone(),
                    output: text.clone(),
                    valid: outcome.valid,
                    energy: outcome.energy,
                    outcome,
                });
                text
            }
        };
        for step in &self.steps {
            let constraint = step.to_constraint(&current);
            let (outcome, trace) = solver.solve_traced(&constraint)?;
            traces.push(trace);
            let text = outcome.solution.as_text().unwrap_or_default().to_string();
            stages.push(StageReport {
                constraint,
                output: text.clone(),
                valid: outcome.valid,
                energy: outcome.energy,
                outcome,
            });
            current = text;
        }
        Ok((
            PipelineReport {
                final_text: current,
                stages,
            },
            traces,
        ))
    }
}

impl Pipeline {
    /// Like [`Pipeline::run`], additionally returning one
    /// [`qsmt_telemetry::SolveReport`] per solver invocation — the
    /// observability view of §4.12 sequential composition, aggregated by
    /// `qsmt solve --report` into the per-goal `solves` array.
    ///
    /// ```
    /// use qsmt_core::{Pipeline, Start, Step, StringSolver};
    ///
    /// let (report, solves) = Pipeline::new(Start::Literal("ab".into()))
    ///     .then(Step::Reverse)
    ///     .run_reported(&StringSolver::with_defaults().with_seed(3))
    ///     .unwrap();
    /// assert_eq!(report.final_text, "ba");
    /// assert_eq!(solves.len(), 1);
    /// assert!(solves[0].total_us > 0);
    /// ```
    ///
    /// # Errors
    /// Propagates the first encoding failure.
    pub fn run_reported(
        &self,
        solver: &StringSolver,
    ) -> Result<(PipelineReport, Vec<qsmt_telemetry::SolveReport>), ConstraintError> {
        let mut stages: Vec<StageReport> = Vec::with_capacity(self.num_stages());
        let mut reports = Vec::with_capacity(self.num_stages());
        let mut current: String = match &self.start {
            Start::Literal(s) => s.clone(),
            Start::Generate(c) => {
                let (outcome, report) = solver.solve_reported(c)?;
                reports.push(report);
                let text = outcome.solution.as_text().unwrap_or_default().to_string();
                stages.push(StageReport {
                    constraint: c.clone(),
                    output: text.clone(),
                    valid: outcome.valid,
                    energy: outcome.energy,
                    outcome,
                });
                text
            }
        };
        for step in &self.steps {
            let constraint = step.to_constraint(&current);
            let (outcome, report) = solver.solve_reported(&constraint)?;
            reports.push(report);
            let text = outcome.solution.as_text().unwrap_or_default().to_string();
            stages.push(StageReport {
                constraint,
                output: text.clone(),
                valid: outcome.valid,
                energy: outcome.energy,
                outcome,
            });
            current = text;
        }
        Ok((
            PipelineReport {
                final_text: current,
                stages,
            },
            reports,
        ))
    }
}

impl Pipeline {
    /// Statically lints every stage's compiled QUBO without sampling.
    ///
    /// Transformation steps are threaded using the steps' *classical*
    /// string semantics (reverse, replace, concat are deterministic), so
    /// every stage lints exactly the QUBO that [`Pipeline::run`] would
    /// compile. A [`Start::Generate`] pipeline lints the generation
    /// constraint only and stops: the generated text is not known without
    /// sampling, so downstream step QUBOs cannot be reproduced statically.
    ///
    /// ```
    /// use qsmt_core::{Pipeline, Start, Step, StringSolver};
    ///
    /// let reports = Pipeline::new(Start::Literal("hello".into()))
    ///     .then(Step::Reverse)
    ///     .lint(&StringSolver::with_defaults())
    ///     .unwrap();
    /// assert_eq!(reports.len(), 1);
    /// assert!(!reports[0].has_errors());
    /// ```
    ///
    /// # Errors
    /// Propagates the first encoding failure.
    pub fn lint(
        &self,
        solver: &StringSolver,
    ) -> Result<Vec<qsmt_lint::LintReport>, ConstraintError> {
        let mut reports = Vec::with_capacity(self.num_stages());
        let mut current: String = match &self.start {
            Start::Literal(s) => s.clone(),
            Start::Generate(c) => {
                reports.push(solver.lint(c)?);
                return Ok(reports);
            }
        };
        for step in &self.steps {
            let constraint = step.to_constraint(&current);
            reports.push(solver.lint(&constraint)?);
            current = match step {
                Step::Reverse => current.chars().rev().collect(),
                Step::ReplaceAll { from, to } => current.replace(*from, &to.to_string()),
                Step::ReplaceFirst { from, to } => current.replacen(*from, &to.to_string(), 1),
                Step::Append { suffix, separator } => {
                    format!("{current}{separator}{suffix}")
                }
            };
        }
        Ok(reports)
    }
}

/// One stage's record within a pipeline run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The constraint solved at this stage.
    pub constraint: Constraint,
    /// The decoded output string fed to the next stage.
    pub output: String,
    /// Whether the stage's answer validated semantically.
    pub valid: bool,
    /// Energy of the reported answer.
    pub energy: f64,
    /// The full solve outcome.
    pub outcome: SolveOutcome,
}

/// The result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Output of the final stage.
    pub final_text: String,
    /// Per-stage records in execution order.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// True when every stage validated.
    pub fn all_valid(&self) -> bool {
        self.stages.iter().all(|s| s.valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> StringSolver {
        StringSolver::with_defaults().with_seed(11)
    }

    #[test]
    fn table1_row1_reverse_then_replace() {
        let report = Pipeline::new(Start::Literal("hello".into()))
            .then(Step::Reverse)
            .then(Step::ReplaceAll { from: 'e', to: 'a' })
            .run(&solver())
            .unwrap();
        assert_eq!(report.final_text, "ollah");
        assert_eq!(report.stages.len(), 2);
        assert!(report.all_valid());
        assert_eq!(report.stages[0].output, "olleh");
    }

    #[test]
    fn table1_row4_concat_then_replace_all() {
        let report = Pipeline::new(Start::Literal("hello".into()))
            .then(Step::Append {
                suffix: "world".into(),
                separator: " ".into(),
            })
            .then(Step::ReplaceAll { from: 'l', to: 'x' })
            .run(&solver())
            .unwrap();
        assert_eq!(report.final_text, "hexxo worxd");
        assert!(report.all_valid());
    }

    #[test]
    fn generated_start_feeds_steps() {
        let report = Pipeline::new(Start::Generate(Constraint::Regex {
            pattern: "ab+".into(),
            len: 3,
        }))
        .then(Step::Reverse)
        .run(&solver())
        .unwrap();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.final_text, "bba");
    }

    #[test]
    fn replace_first_step() {
        let report = Pipeline::new(Start::Literal("aa".into()))
            .then(Step::ReplaceFirst { from: 'a', to: 'b' })
            .run(&solver())
            .unwrap();
        assert_eq!(report.final_text, "ba");
    }

    #[test]
    fn empty_pipeline_returns_start() {
        let report = Pipeline::new(Start::Literal("abc".into()))
            .run(&solver())
            .unwrap();
        assert_eq!(report.final_text, "abc");
        assert!(report.stages.is_empty());
        assert!(report.all_valid());
    }

    #[test]
    fn traced_run_matches_untraced_and_yields_one_trace_per_stage() {
        let p = Pipeline::new(Start::Literal("hello".into()))
            .then(Step::Reverse)
            .then(Step::ReplaceAll { from: 'e', to: 'a' });
        let plain = p.run(&solver()).unwrap();
        let (traced, traces) = p.run_traced(&solver()).unwrap();
        assert_eq!(plain.final_text, traced.final_text);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert_eq!(t.stages.len(), 5, "each stage gets a full Figure 1 trace");
        }
    }

    #[test]
    fn reported_run_matches_plain_run() {
        let p = Pipeline::new(Start::Literal("hello".into()))
            .then(Step::Reverse)
            .then(Step::ReplaceAll { from: 'e', to: 'a' });
        let plain = p.run(&solver()).unwrap();
        let (reported, reports) = p.run_reported(&solver()).unwrap();
        assert_eq!(plain.final_text, reported.final_text);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.valid);
            let labels: Vec<&str> = r.stages.iter().map(|s| s.label.as_str()).collect();
            assert_eq!(
                labels,
                vec!["compile", "lint", "presolve", "embed", "sample", "select"]
            );
        }
        assert_eq!(reports[0].solution, "\"olleh\"");
    }

    #[test]
    fn lint_covers_every_literal_stage() {
        let p = Pipeline::new(Start::Literal("hello".into()))
            .then(Step::Reverse)
            .then(Step::ReplaceAll { from: 'e', to: 'a' })
            .then(Step::Append {
                suffix: "!".into(),
                separator: "".into(),
            });
        let reports = p.lint(&solver()).unwrap();
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert!(!r.has_errors(), "{}", r.render());
        }
    }

    #[test]
    fn lint_of_generated_start_stops_after_generation() {
        let p =
            Pipeline::new(Start::Generate(Constraint::Palindrome { len: 3 })).then(Step::Reverse);
        let reports = p.lint(&solver()).unwrap();
        assert_eq!(reports.len(), 1, "generated text is unknown statically");
    }

    #[test]
    fn num_stages_counts_generation() {
        let p =
            Pipeline::new(Start::Generate(Constraint::Palindrome { len: 2 })).then(Step::Reverse);
        assert_eq!(p.num_stages(), 2);
        let q = Pipeline::new(Start::Literal("x".into())).then(Step::Reverse);
        assert_eq!(q.num_stages(), 1);
    }
}
