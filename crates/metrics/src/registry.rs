//! Sharded metrics registry: counters, gauges, log-bucketed histograms.
//!
//! The registry is a single mutex-guarded map from [`MetricKey`] (name +
//! sorted label pairs) to a series value. Hot paths should not touch that
//! mutex per event: they create a [`Shard`] which buffers increments and
//! observations locally and merges them into the registry in one locked
//! pass when dropped (or on [`Shard::flush`]).
//!
//! Histograms are log-bucketed: bucket `k` has upper bound `2^k` for
//! `k ∈ [-30, 30]`, covering roughly `1e-9 .. 1e9`. Buckets are stored
//! sparsely, so an unused histogram costs nothing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Smallest bucket exponent: bucket upper bound `2^-30` (~9.3e-10).
pub const BUCKET_MIN_EXP: i32 = -30;
/// Largest bucket exponent: bucket upper bound `2^30` (~1.07e9).
pub const BUCKET_MAX_EXP: i32 = 30;

/// Identity of one time series: metric name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `qsmt_sampler_proposals_total`.
    pub name: String,
    /// Label pairs, sorted by label name for a canonical ordering.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key from a name and unsorted label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// The kind of a metric series, fixed at first use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing sum.
    Counter,
    /// Last-write-wins instantaneous value.
    Gauge,
    /// Log-bucketed distribution with sum and count.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// Sparse log-bucketed histogram state.
#[derive(Clone, Debug, Default, PartialEq)]
struct HistogramData {
    /// Bucket exponent -> count of observations with `value <= 2^exp`
    /// (non-cumulative; cumulated at render time).
    buckets: BTreeMap<i32, u64>,
    sum: f64,
    count: u64,
}

impl HistogramData {
    fn observe(&mut self, value: f64) {
        *self.buckets.entry(bucket_exp(value)).or_insert(0) += 1;
        self.sum += value;
        self.count += 1;
    }
}

/// Returns the bucket exponent for a value: smallest `k` with `value <= 2^k`.
fn bucket_exp(value: f64) -> i32 {
    if value.is_nan() || value <= 0.0 {
        return BUCKET_MIN_EXP;
    }
    let k = value.log2().ceil() as i32;
    k.clamp(BUCKET_MIN_EXP, BUCKET_MAX_EXP)
}

#[derive(Clone, Debug, PartialEq)]
enum SeriesValue {
    Counter(f64),
    Gauge(f64),
    Histogram(HistogramData),
}

impl SeriesValue {
    fn kind(&self) -> MetricKind {
        match self {
            Self::Counter(_) => MetricKind::Counter,
            Self::Gauge(_) => MetricKind::Gauge,
            Self::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Default)]
struct Inner {
    series: BTreeMap<MetricKey, SeriesValue>,
    help: BTreeMap<String, String>,
}

/// A mutex-guarded metrics registry with Prometheus text exposition.
///
/// All methods take `&self`; the registry is safe to share between threads.
/// For per-event recording in hot paths, prefer [`Registry::shard`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers help text for a metric name (shown as `# HELP` on export).
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Adds `value` to the counter series identified by `name` + `labels`.
    ///
    /// Negative deltas are ignored (counters are monotone).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        if value.is_nan() || value < 0.0 {
            return;
        }
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.series.entry(key).or_insert(SeriesValue::Counter(0.0)) {
            SeriesValue::Counter(total) => *total += value,
            _ => debug_assert!(false, "metric kind mismatch for {name}"),
        }
    }

    /// Sets the gauge series identified by `name` + `labels` to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.series.entry(key).or_insert(SeriesValue::Gauge(0.0)) {
            SeriesValue::Gauge(current) => *current = value,
            _ => debug_assert!(false, "metric kind mismatch for {name}"),
        }
    }

    /// Records one observation into the histogram series `name` + `labels`.
    pub fn histogram_observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .series
            .entry(key)
            .or_insert_with(|| SeriesValue::Histogram(HistogramData::default()))
        {
            SeriesValue::Histogram(hist) => hist.observe(value),
            _ => debug_assert!(false, "metric kind mismatch for {name}"),
        }
    }

    /// Returns a buffered shard for lock-free recording on a hot path.
    ///
    /// The shard merges into the registry when dropped; call
    /// [`Shard::flush`] to merge earlier.
    pub fn shard(&self) -> Shard<'_> {
        Shard {
            registry: self,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            observations: BTreeMap::new(),
        }
    }

    /// Current value of a counter series, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        let inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.series.get(&key) {
            Some(SeriesValue::Counter(total)) => Some(*total),
            _ => None,
        }
    }

    /// Current value of a gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        let inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.series.get(&key) {
            Some(SeriesValue::Gauge(value)) => Some(*value),
            _ => None,
        }
    }

    /// Observation count of a histogram series, if it exists.
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        let inner = self.inner.lock().expect("metrics registry poisoned");
        match inner.series.get(&key) {
            Some(SeriesValue::Histogram(hist)) => Some(hist.count),
            _ => None,
        }
    }

    /// Number of distinct series currently registered.
    pub fn series_count(&self) -> usize {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .series
            .len()
    }

    fn merge_shard(
        &self,
        counters: &BTreeMap<MetricKey, f64>,
        gauges: &BTreeMap<MetricKey, f64>,
        observations: &BTreeMap<MetricKey, Vec<f64>>,
    ) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (key, delta) in counters {
            match inner
                .series
                .entry(key.clone())
                .or_insert(SeriesValue::Counter(0.0))
            {
                SeriesValue::Counter(total) => *total += delta,
                _ => debug_assert!(false, "metric kind mismatch for {}", key.name),
            }
        }
        for (key, value) in gauges {
            match inner
                .series
                .entry(key.clone())
                .or_insert(SeriesValue::Gauge(0.0))
            {
                SeriesValue::Gauge(current) => *current = *value,
                _ => debug_assert!(false, "metric kind mismatch for {}", key.name),
            }
        }
        for (key, values) in observations {
            match inner
                .series
                .entry(key.clone())
                .or_insert_with(|| SeriesValue::Histogram(HistogramData::default()))
            {
                SeriesValue::Histogram(hist) => {
                    for v in values {
                        hist.observe(*v);
                    }
                }
                _ => debug_assert!(false, "metric kind mismatch for {}", key.name),
            }
        }
    }

    /// Renders every series in Prometheus text exposition format (v0.0.4).
    ///
    /// Series are grouped by metric name with one `# HELP`/`# TYPE` header
    /// per name. Histogram buckets are emitted cumulatively with `le`
    /// labels (only non-empty buckets, plus the mandatory `+Inf`).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, value) in &inner.series {
            if last_name != Some(key.name.as_str()) {
                last_name = Some(key.name.as_str());
                if let Some(help) = inner.help.get(&key.name) {
                    let _ = writeln!(out, "# HELP {} {}", key.name, escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {} {}", key.name, value.kind().as_str());
            }
            match value {
                SeriesValue::Counter(total) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        format_value(*total)
                    );
                }
                SeriesValue::Gauge(current) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        format_value(*current)
                    );
                }
                SeriesValue::Histogram(hist) => {
                    let mut cumulative = 0u64;
                    for (exp, count) in &hist.buckets {
                        cumulative += count;
                        let le = format_value(2f64.powi(*exp));
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            render_labels(&key.labels, Some(&le)),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name,
                        render_labels(&key.labels, Some("+Inf")),
                        hist.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        format_value(hist.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        render_labels(&key.labels, None),
                        hist.count
                    );
                }
            }
        }
        out
    }
}

/// A thread-local buffer of metric updates, merged on drop.
///
/// Counters accumulate deltas, gauges keep the last written value, and
/// histogram observations are queued. None of the methods touch the
/// registry mutex; the merge happens once, in [`Shard::flush`] or `Drop`.
pub struct Shard<'a> {
    registry: &'a Registry,
    counters: BTreeMap<MetricKey, f64>,
    gauges: BTreeMap<MetricKey, f64>,
    observations: BTreeMap<MetricKey, Vec<f64>>,
}

impl Shard<'_> {
    /// Buffers a counter increment.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if value.is_nan() || value < 0.0 {
            return;
        }
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0.0) += value;
    }

    /// Buffers a gauge write (last value wins at merge time).
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Buffers a histogram observation.
    pub fn histogram_observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.observations
            .entry(MetricKey::new(name, labels))
            .or_default()
            .push(value);
    }

    /// Merges all buffered updates into the registry and clears the buffer.
    pub fn flush(&mut self) {
        if self.counters.is_empty() && self.gauges.is_empty() && self.observations.is_empty() {
            return;
        }
        self.registry
            .merge_shard(&self.counters, &self.gauges, &self.observations);
        self.counters.clear();
        self.gauges.clear();
        self.observations.clear();
    }
}

impl Drop for Shard<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(value: &str) -> String {
    value.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats a sample value: integral floats render without a fraction part.
fn format_value(value: f64) -> String {
    if value.is_finite() && value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_reads_back() {
        let reg = Registry::new();
        reg.counter_add("c_total", &[("s", "sa")], 2.0);
        reg.counter_add("c_total", &[("s", "sa")], 3.0);
        reg.counter_add("c_total", &[("s", "pt")], 1.0);
        assert_eq!(reg.counter_value("c_total", &[("s", "sa")]), Some(5.0));
        assert_eq!(reg.counter_value("c_total", &[("s", "pt")]), Some(1.0));
        assert_eq!(reg.counter_value("c_total", &[("s", "none")]), None);
    }

    #[test]
    fn counter_ignores_negative_and_nan() {
        let reg = Registry::new();
        reg.counter_add("c_total", &[], 1.0);
        reg.counter_add("c_total", &[], -5.0);
        reg.counter_add("c_total", &[], f64::NAN);
        assert_eq!(reg.counter_value("c_total", &[]), Some(1.0));
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let reg = Registry::new();
        reg.gauge_set("g", &[], 1.5);
        reg.gauge_set("g", &[], -2.5);
        assert_eq!(reg.gauge_value("g", &[]), Some(-2.5));
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        reg.counter_add("c_total", &[("b", "2"), ("a", "1")], 1.0);
        reg.counter_add("c_total", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(reg.series_count(), 1);
        assert_eq!(
            reg.counter_value("c_total", &[("b", "2"), ("a", "1")]),
            Some(2.0)
        );
    }

    #[test]
    fn bucket_exp_covers_edges() {
        assert_eq!(bucket_exp(0.0), BUCKET_MIN_EXP);
        assert_eq!(bucket_exp(-3.0), BUCKET_MIN_EXP);
        assert_eq!(bucket_exp(f64::NAN), BUCKET_MIN_EXP);
        assert_eq!(bucket_exp(1.0), 0);
        assert_eq!(bucket_exp(1.1), 1);
        assert_eq!(bucket_exp(2.0), 1);
        assert_eq!(bucket_exp(1e300), BUCKET_MAX_EXP);
        assert_eq!(bucket_exp(1e-300), BUCKET_MIN_EXP);
    }

    #[test]
    fn histogram_counts_and_sum() {
        let reg = Registry::new();
        for v in [0.5, 1.0, 2.0, 4.0] {
            reg.histogram_observe("h", &[], v);
        }
        assert_eq!(reg.histogram_count("h", &[]), Some(4));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE h histogram"));
        assert!(text.contains("h_count 4"));
        assert!(text.contains("h_sum 7.5"));
        assert!(text.contains("le=\"+Inf\"} 4"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        reg.histogram_observe("h", &[], 0.5);
        reg.histogram_observe("h", &[], 0.5);
        reg.histogram_observe("h", &[], 8.0);
        let text = reg.render_prometheus();
        // 0.5 lands in the 2^-1 bucket, 8.0 in the 2^3 bucket; the later
        // bucket line must include the earlier observations.
        assert!(text.contains("h_bucket{le=\"0.5\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"8\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    fn shard_merges_on_drop() {
        let reg = Registry::new();
        {
            let mut shard = reg.shard();
            shard.counter_add("c_total", &[("s", "sa")], 10.0);
            shard.gauge_set("g", &[], 3.0);
            shard.histogram_observe("h", &[], 1.0);
            // Nothing merged yet.
            assert_eq!(reg.series_count(), 0);
        }
        assert_eq!(reg.counter_value("c_total", &[("s", "sa")]), Some(10.0));
        assert_eq!(reg.gauge_value("g", &[]), Some(3.0));
        assert_eq!(reg.histogram_count("h", &[]), Some(1));
    }

    #[test]
    fn shard_flush_is_idempotent() {
        let reg = Registry::new();
        let mut shard = reg.shard();
        shard.counter_add("c_total", &[], 1.0);
        shard.flush();
        shard.flush();
        drop(shard);
        assert_eq!(reg.counter_value("c_total", &[]), Some(1.0));
    }

    #[test]
    fn concurrent_shards_merge_all_updates() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let mut shard = reg.shard();
                    for _ in 0..100 {
                        shard.counter_add("c_total", &[], 1.0);
                        shard.histogram_observe("h", &[], 2.0);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("c_total", &[]), Some(800.0));
        assert_eq!(reg.histogram_count("h", &[]), Some(800));
    }

    #[test]
    fn prometheus_render_has_headers_and_escapes() {
        let reg = Registry::new();
        reg.describe("c_total", "a counter with \"quotes\"\nand newline");
        reg.counter_add("c_total", &[("path", "a\"b\\c")], 1.0);
        reg.gauge_set("g", &[], 0.25);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP c_total a counter with \"quotes\"\\nand newline"));
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\"} 1"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("g 0.25"));
        // Exactly one TYPE header per metric name.
        assert_eq!(text.matches("# TYPE c_total").count(), 1);
    }
}
