//! Quickstart: solve one of each kind of string constraint on the
//! simulated annealer and print the results.
//!
//! Run with: `cargo run --release --example quickstart`

use qsmt::{Constraint, Pipeline, Start, Step, StringSolver};

fn main() {
    let solver = StringSolver::with_defaults().with_seed(2026);

    println!("qsmt quickstart — QUBO string solving on a simulated annealer");
    println!("sampler: {}\n", solver.sampler_name());

    let constraints = vec![
        Constraint::Equality {
            target: "hello".into(),
        },
        Constraint::Reverse {
            input: "hello".into(),
        },
        Constraint::ReplaceAll {
            input: "hello world".into(),
            from: 'l',
            to: 'x',
        },
        Constraint::Palindrome { len: 6 },
        Constraint::Regex {
            pattern: "a[bc]+".into(),
            len: 5,
        },
        Constraint::SubstringMatch {
            substring: "cat".into(),
            len: 4,
        },
        Constraint::IndexOfPlacement {
            substring: "hi".into(),
            index: 2,
            len: 6,
        },
        Constraint::Includes {
            haystack: "hello world".into(),
            needle: "world".into(),
        },
    ];

    for c in &constraints {
        match solver.solve(c) {
            Ok(out) => println!(
                "{:<45} -> {:<16} vars={:<4} energy={:<8.2} valid={}",
                c.describe(),
                out.solution.to_string(),
                out.problem.num_vars(),
                out.energy,
                out.valid
            ),
            Err(e) => println!("{:<45} -> error: {e}", c.describe()),
        }
    }

    // §4.12: sequential combination — Table 1 row 1.
    println!("\nsequential pipeline (paper §4.12):");
    let report = Pipeline::new(Start::Literal("hello".into()))
        .then(Step::Reverse)
        .then(Step::ReplaceAll { from: 'e', to: 'a' })
        .run(&solver)
        .expect("pipeline encodes");
    for (i, stage) in report.stages.iter().enumerate() {
        println!(
            "  stage {}: {:<40} -> {:?}",
            i + 1,
            stage.constraint.describe(),
            stage.output
        );
    }
    println!("  final: {:?} (expected \"ollah\")", report.final_text);
}
