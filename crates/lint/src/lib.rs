//! # qsmt-lint — static soundness analysis of compiled QUBO/Ising encodings
//!
//! The paper's central claim is that each string operation's QUBO
//! formulation has ground states that decode exactly to satisfying
//! strings. Nothing in the sampling pipeline *checks* a formulation
//! before burning reads on it, though — and penalty weights and
//! coefficient dynamic range decide whether any sampler (classical or
//! quantum) can see the ground state at all. This crate is that check:
//! a static analyzer over [`QuboModel`]/[`IsingModel`] that runs **no
//! sampling** and emits structured diagnostics.
//!
//! ## Passes
//!
//! 1. **Penalty-gap analysis** ([`passes::penalty_gap`]) — lower-bounds
//!    each inferred penalty group's margin against the objective's
//!    reachable pull and errors when a constraint violation can be
//!    energetically favorable.
//! 2. **Dead / presolve-fixable variables** ([`passes::dead_variables`],
//!    [`passes::presolve_fixable`]) — unconstrained bits and variables
//!    persistency would fix that survived compilation.
//! 3. **One-hot validation** ([`passes::one_hot_weak`]) — recovers
//!    one-hot cliques from the compiled `PenaltyBuilder` structure and
//!    verifies the weights actually enforce (at-most/exactly)-one.
//! 4. **Conditioning & precision** ([`passes::conditioning`]) —
//!    dynamic range vs. a QPU precision model, quantization erasure, and
//!    chain-strength feasibility against the coupler range.
//! 5. **Connectivity & degeneracy** ([`passes::connectivity`],
//!    [`passes::degenerate_symmetry`]) — disconnected components and
//!    exact swap symmetries of the energy function.
//!
//! Every diagnostic carries a stable kebab-case [`LintCode`]; the
//! catalogue with minimal triggering examples lives in `docs/LINTS.md`.
//!
//! ## Example
//!
//! ```
//! use qsmt_lint::{lint_qubo, LintConfig};
//! use qsmt_qubo::{PenaltyBuilder, QuboModel};
//!
//! // A sound exactly-one group: no error diagnostics.
//! let mut m = QuboModel::new(3);
//! PenaltyBuilder::new(&mut m).exactly_one(&[0, 1, 2], 2.0);
//! let report = lint_qubo(&m, &LintConfig::default());
//! assert!(!report.has_errors());
//!
//! // Rewarding two members more than the penalty can absorb is unsound —
//! // and the linter proves it statically.
//! let mut weak = QuboModel::new(3);
//! PenaltyBuilder::new(&mut weak)
//!     .exactly_one(&[0, 1, 2], 1.0)
//!     .bit_target(0, true, 5.0)
//!     .bit_target(1, true, 5.0);
//! let report = lint_qubo(&weak, &LintConfig::default());
//! assert!(report.codes().contains(&"penalty-gap"));
//! ```

#![warn(missing_docs)]

mod config;
mod diagnostic;
pub mod passes;
mod structure;

pub use config::{LintConfig, PrecisionModel};
pub use diagnostic::{Diagnostic, LintCode, LintReport, Severity};
pub use structure::{infer_groups, OneHotGroup};

use qsmt_qubo::{IsingModel, QuboModel};

/// Lints a QUBO model with the given configuration.
pub fn lint_qubo(model: &QuboModel, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport {
        diagnostics: passes::run_qubo_passes(model, cfg),
    };
    report.finish();
    report
}

/// Lints an Ising model with the given configuration.
///
/// Runs the Ising-native checks (fields/couplers against hardware
/// ranges, gauge symmetry, dead spins, connectivity). For the structural
/// QUBO passes, convert with [`IsingModel::to_qubo`] and call
/// [`lint_qubo`].
pub fn lint_ising(model: &IsingModel, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport {
        diagnostics: passes::run_ising_passes(model, cfg),
    };
    report.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsmt_qubo::{PenaltyBuilder, QuboModel};

    fn default_lint(m: &QuboModel) -> LintReport {
        lint_qubo(m, &LintConfig::default())
    }

    #[test]
    fn clean_exactly_one_is_sound() {
        let mut m = QuboModel::new(4);
        PenaltyBuilder::new(&mut m).exactly_one(&[0, 1, 2, 3], 2.0);
        let report = default_lint(&m);
        assert!(
            !report.has_errors(),
            "unexpected errors: {}",
            report.render()
        );
    }

    #[test]
    fn weakened_penalty_trips_penalty_gap_and_agrees_with_ground_truth() {
        // exactly_one(strength 1) but two members carry a -5 objective
        // reward: the double-hot state is the true ground state, so the
        // formulation is unsound. The linter must say so statically.
        let mut m = QuboModel::new(3);
        PenaltyBuilder::new(&mut m)
            .exactly_one(&[0, 1, 2], 1.0)
            .bit_target(0, true, 5.0)
            .bit_target(1, true, 5.0);
        let report = default_lint(&m);
        assert!(report.has_errors());
        assert!(
            report.codes().contains(&"penalty-gap"),
            "{}",
            report.render()
        );
        // Ground truth: the ground state indeed violates one-hot.
        let (_, states) = m.brute_force_ground_states();
        assert!(states
            .iter()
            .all(|s| s.iter().map(|&b| u32::from(b)).sum::<u32>() > 1));
    }

    #[test]
    fn adequately_weighted_objective_passes() {
        // Same shape, but the penalty dominates the rewards: sound.
        let mut m = QuboModel::new(3);
        PenaltyBuilder::new(&mut m)
            .exactly_one(&[0, 1, 2], 10.0)
            .bit_target(0, true, 5.0)
            .bit_target(1, true, 5.0);
        let report = default_lint(&m);
        assert!(!report.has_errors(), "{}", report.render());
        let (_, states) = m.brute_force_ground_states();
        assert!(states
            .iter()
            .all(|s| s.iter().map(|&b| u32::from(b)).sum::<u32>() == 1));
    }

    #[test]
    fn external_pull_is_part_of_the_bound() {
        // The group itself is fine, but an external variable pulls two
        // members on at once with large negative couplings: switching all
        // three on beats any one-hot state. exactly_one A=1, pulls -6.
        let mut m = QuboModel::new(4);
        PenaltyBuilder::new(&mut m).exactly_one(&[0, 1, 2], 1.0);
        m.add_quadratic(0, 3, -6.0);
        m.add_quadratic(1, 3, -6.0);
        let report = default_lint(&m);
        assert!(
            report.codes().contains(&"penalty-gap"),
            "{}",
            report.render()
        );
        let (_, states) = m.brute_force_ground_states();
        assert!(states
            .iter()
            .all(|s| s[..3].iter().map(|&b| u32::from(b)).sum::<u32>() > 1));
    }

    #[test]
    fn one_sided_external_pull_does_not_false_positive() {
        // A strong pull on a single member just biases which one-hot wins;
        // the penalty still repairs any pair by dropping the other member.
        let mut m = QuboModel::new(4);
        PenaltyBuilder::new(&mut m).exactly_one(&[0, 1, 2], 1.0);
        m.add_quadratic(0, 3, -6.0);
        let report = default_lint(&m);
        assert!(!report.has_errors(), "{}", report.render());
        let (_, states) = m.brute_force_ground_states();
        assert!(states
            .iter()
            .all(|s| s[..3].iter().map(|&b| u32::from(b)).sum::<u32>() == 1));
    }

    #[test]
    fn dead_variable_detected() {
        let mut m = QuboModel::new(3);
        m.add_linear(0, -1.0);
        m.add_quadratic(0, 1, 0.5);
        // var 2 has no terms at all
        let report = default_lint(&m);
        assert!(report.codes().contains(&"dead-variable"));
        let dead = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::DeadVariable)
            .unwrap();
        assert_eq!(dead.vars, vec![2]);
    }

    #[test]
    fn presolve_fixable_detected_on_diagonal_model() {
        let mut m = QuboModel::new(2);
        m.add_linear(0, -1.0);
        m.add_linear(1, 2.0);
        let report = default_lint(&m);
        assert!(report.codes().contains(&"presolve-fixable"));
        assert!(!report.has_errors());
    }

    #[test]
    fn dynamic_range_and_precision_loss_detected() {
        let mut m = QuboModel::new(3);
        m.add_quadratic(0, 1, 1000.0);
        m.add_quadratic(1, 2, 0.001);
        let report = default_lint(&m);
        assert!(
            report.codes().contains(&"dynamic-range"),
            "{}",
            report.render()
        );
        assert!(report.codes().contains(&"precision-loss"));
    }

    #[test]
    fn chain_strength_warning_when_chains_dominate() {
        // Dense uniform couplings: UTC strength scales with sqrt(degree)
        // and overtakes max |coefficient|; the smallest coefficient sits
        // just above resolution unscaled, below it after chain scaling.
        let n = 40usize;
        let mut m = QuboModel::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                m.add_quadratic(i, j, 1.0);
            }
        }
        m.add_linear(0, 0.006);
        let report = default_lint(&m);
        assert!(
            report.codes().contains(&"chain-strength"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn disconnected_components_detected() {
        let mut m = QuboModel::new(4);
        m.add_quadratic(0, 1, 1.0);
        m.add_quadratic(2, 3, -1.0);
        let report = default_lint(&m);
        assert!(report.codes().contains(&"disconnected-components"));
    }

    #[test]
    fn palindrome_style_mirror_pairs_are_symmetric() {
        // bits_equal mirror pairs: each pair is interchangeable.
        let mut m = QuboModel::new(4);
        PenaltyBuilder::new(&mut m)
            .bits_equal(0, 3, 1.0)
            .bits_equal(1, 2, 1.0);
        let report = default_lint(&m);
        assert!(
            report.codes().contains(&"degenerate-symmetry"),
            "{}",
            report.render()
        );
        let sym = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::DegenerateSymmetry)
            .unwrap();
        assert_eq!(sym.metric, Some(2.0));
    }

    #[test]
    fn ising_gauge_symmetry_detected() {
        let mut ising = qsmt_qubo::IsingModel::new(3);
        ising.add_coupling(0, 1, -1.0);
        ising.add_coupling(1, 2, -1.0);
        let report = lint_ising(&ising, &LintConfig::default());
        assert!(
            report.codes().contains(&"gauge-symmetry"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn ising_dead_spin_and_components() {
        let mut ising = qsmt_qubo::IsingModel::new(5);
        ising.add_coupling(0, 1, 1.0);
        ising.add_coupling(2, 3, 1.0);
        ising.add_field(0, 0.5);
        let report = lint_ising(&ising, &LintConfig::default());
        assert!(report.codes().contains(&"dead-variable"));
        assert!(report.codes().contains(&"disconnected-components"));
    }

    #[test]
    fn empty_model_is_clean() {
        let report = default_lint(&QuboModel::new(0));
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.summary(), "0 errors, 0 warnings, 0 info");
    }

    #[test]
    fn borderline_pair_weights_separate_sound_from_unsound() {
        // l = -3 each, pairwise w = +3.5: any pair scores -6 + 3.5 = -2.5,
        // worse than the best single (-3), and the triple scores +1.5 —
        // sound despite the strong rewards.
        let mut m = QuboModel::new(3);
        m.add_linear(0, -3.0);
        m.add_linear(1, -3.0);
        m.add_linear(2, -3.0);
        m.add_quadratic(0, 1, 3.5);
        m.add_quadratic(0, 2, 3.5);
        m.add_quadratic(1, 2, 3.5);
        let report = default_lint(&m);
        assert!(!report.has_errors(), "{}", report.render());
        // Weaken one pair weight below the repair threshold: the pair
        // (0,1) now beats every single and penalty-gap must fire.
        m.set_quadratic(0, 1, 2.5); // add-deltas: -3 + 2.5 = -0.5 both ways
        let report = default_lint(&m);
        assert!(
            report.codes().contains(&"penalty-gap"),
            "{}",
            report.render()
        );
        let (_, states) = m.brute_force_ground_states();
        assert!(states
            .iter()
            .all(|s| s.iter().map(|&b| u32::from(b)).sum::<u32>() > 1));
    }

    #[test]
    fn one_hot_weak_catches_zero_hot_escape() {
        // exactly_one(1.0) but the objective charges every member +3:
        // net linear is +2 everywhere, so the all-zero state beats every
        // one-hot state and the constraint cannot hold.
        let mut m = QuboModel::new(3);
        PenaltyBuilder::new(&mut m)
            .exactly_one(&[0, 1, 2], 1.0)
            .bit_target(0, false, 3.0)
            .bit_target(1, false, 3.0)
            .bit_target(2, false, 3.0);
        let report = default_lint(&m);
        assert!(
            report.codes().contains(&"one-hot-weak"),
            "{}",
            report.render()
        );
        let (_, states) = m.brute_force_ground_states();
        assert_eq!(states, vec![vec![0, 0, 0]]);
    }
}
