//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the three parallel-iterator entry points the workspace uses —
//! `into_par_iter()`, `par_iter()`, and `par_iter_mut()` — implemented as
//! plain sequential `std` iterators. Every adaptor the samplers chain on
//! afterwards (`map`, `zip`, `collect`, …) is then just the standard
//! [`Iterator`] machinery.
//!
//! Samplers in this workspace are written to be deterministic regardless
//! of thread count (each read derives its own RNG stream), so sequential
//! execution changes wall-clock time but never results.

#![warn(missing_docs)]

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.

    /// Consuming conversion into a (sequential) "parallel" iterator.
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Converts `self` into an iterator. Sequential in this shim.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing conversion, mirroring `rayon`'s `par_iter()`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (a shared reference).
        type Item: 'data;
        /// Iterates over `&self`. Sequential in this shim.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: 'data,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mutably borrowing conversion, mirroring `rayon`'s `par_iter_mut()`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type (an exclusive reference).
        type Item: 'data;
        /// Iterates over `&mut self`. Sequential in this shim.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
        <&'data mut C as IntoIterator>::Item: 'data,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        type Item = <&'data mut C as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let doubled: Vec<usize> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ref_iters_work_with_zip() {
        let mut a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, y)| *x += y);
        assert_eq!(a, vec![11, 22, 33]);
    }
}
