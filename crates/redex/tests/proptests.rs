//! Property-based tests for the regex substrate: display/parse round
//! trips, NFA/enumeration/counting agreement, and positional-set
//! soundness on randomly generated patterns.

use proptest::prelude::*;
use qsmt_redex::{count_matches, enumerate_matches, parse, positional_sets, ClassSet, Nfa, Regex};

/// Small alphabet so exhaustive language checks stay cheap.
const SIGMA: &[char] = &['a', 'b', 'c'];

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        proptest::char::range('a', 'c').prop_map(Regex::Literal),
        proptest::collection::vec(proptest::char::range('a', 'c'), 1..=3)
            .prop_map(|cs| Regex::Class(ClassSet::new(cs))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..=3).prop_map(Regex::Concat),
            proptest::collection::vec(inner.clone(), 2..=3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.prop_map(|r| Regex::Opt(Box::new(r))),
        ]
    })
}

/// All strings over SIGMA of length ≤ max_len.
fn small_strings(max_len: usize) -> Vec<String> {
    let mut out = vec![String::new()];
    let mut frontier = vec![String::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &frontier {
            for &c in SIGMA {
                let mut t = s.clone();
                t.push(c);
                next.push(t);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn display_parse_round_trip_preserves_language(re in arb_regex()) {
        let printed = re.to_string();
        let reparsed = parse(&printed).expect("printed regex must reparse");
        let nfa_a = Nfa::compile(&re);
        let nfa_b = Nfa::compile(&reparsed);
        for s in small_strings(4) {
            prop_assert_eq!(
                nfa_a.matches(&s),
                nfa_b.matches(&s),
                "language changed through print/parse for /{}/ on {:?}", printed, s
            );
        }
    }

    #[test]
    fn enumeration_is_exactly_the_fixed_length_language(re in arb_regex(), len in 0usize..=4) {
        let nfa = Nfa::compile(&re);
        let enumerated = enumerate_matches(&re, len, SIGMA, 10_000);
        // Everything enumerated matches and has the right length.
        for s in &enumerated {
            prop_assert!(nfa.matches(s));
            prop_assert_eq!(s.chars().count(), len);
        }
        // Nothing is missed.
        let expected: Vec<String> = small_strings(len)
            .into_iter()
            .filter(|s| s.chars().count() == len && nfa.matches(s))
            .collect();
        let mut a = enumerated;
        let mut b = expected;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn counting_agrees_with_enumeration(re in arb_regex(), len in 0usize..=4) {
        let listed = enumerate_matches(&re, len, SIGMA, 100_000).len() as u128;
        prop_assert_eq!(count_matches(&re, len, SIGMA), listed);
    }

    #[test]
    fn positional_sets_are_sound_and_complete_marginals(re in arb_regex(), len in 1usize..=4) {
        let matches = enumerate_matches(&re, len, SIGMA, 100_000);
        match positional_sets(&re, len, SIGMA) {
            None => prop_assert!(matches.is_empty()),
            Some(sets) => {
                prop_assert!(!matches.is_empty());
                prop_assert_eq!(sets.len(), len);
                // Sound: every matching string stays inside the sets.
                for s in &matches {
                    for (i, c) in s.chars().enumerate() {
                        prop_assert!(sets[i].contains(&c),
                            "char {:?} at {} outside marginal for /{}/", c, i, re);
                    }
                }
                // Complete: every marginal char is witnessed by some match.
                for (i, set) in sets.iter().enumerate() {
                    for &c in set {
                        prop_assert!(
                            matches.iter().any(|s| s.chars().nth(i) == Some(c)),
                            "marginal char {:?} at {} has no witness for /{}/", c, i, re
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn min_len_bounds_are_respected(re in arb_regex()) {
        let nfa = Nfa::compile(&re);
        let min = re.min_len();
        // Nothing shorter than min_len matches.
        for s in small_strings(min.saturating_sub(1).min(3)) {
            if s.chars().count() < min {
                prop_assert!(!nfa.matches(&s));
            }
        }
        if let Some(max) = re.max_len() {
            if max < 4 {
                for s in small_strings(4) {
                    if s.chars().count() > max {
                        prop_assert!(!nfa.matches(&s));
                    }
                }
            }
        }
    }
}
