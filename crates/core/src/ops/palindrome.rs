//! §4.10 Palindrome generation.

use crate::encode::{bit_index, BITS_PER_CHAR};
use crate::error::ConstraintError;
use crate::ops::{BiasProfile, DEFAULT_STRENGTH};
use crate::problem::{DecodeScheme, EncodedProblem};
use qsmt_qubo::PenaltyBuilder;

/// The palindrome-generation encoder (paper §4.10) — a constraint the
/// paper highlights as unsupported by z3.
///
/// For every mirrored character pair `(j, N−1−j)` and every bit `i`, the
/// agreement term
///
/// ```text
/// A · (x_{7j+i} + x_{7(N−1−j)+i} − 2·x_{7j+i}·x_{7(N−1−j)+i})
/// ```
///
/// contributes 0 when the mirrored bits agree and `A` when they differ, so
/// the ground states (energy 0) are exactly the bit-level palindromes. On
/// the matrix this is `+A` on the two diagonal entries and `−2A` on the
/// off-diagonal coupling, matching Table 1's second row.
///
/// Ground states are massively degenerate (any mirrored content); an
/// optional [`BiasProfile`] steers the content toward printable characters
/// without breaking the mirror symmetry (the bias is identical per slot).
#[derive(Debug, Clone)]
pub struct Palindrome {
    len: usize,
    strength: f64,
    bias: BiasProfile,
}

impl Palindrome {
    /// Generates a palindrome of `len` characters.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            strength: DEFAULT_STRENGTH,
            bias: BiasProfile::none(),
        }
    }

    /// Overrides the penalty strength `A`.
    pub fn with_strength(mut self, a: f64) -> Self {
        assert!(a > 0.0, "strength must be positive");
        self.strength = a;
        self
    }

    /// Applies a symmetric content bias (for printable output).
    pub fn with_bias(mut self, bias: BiasProfile) -> Self {
        self.bias = bias;
        self
    }

    /// Compiles to QUBO form.
    ///
    /// # Errors
    /// Fails for zero length (an empty palindrome has no variables to
    /// generate).
    pub fn encode(&self) -> Result<EncodedProblem, ConstraintError> {
        if self.len == 0 {
            return Err(ConstraintError::EmptyArgument { what: "length" });
        }
        let n = self.len;
        let mut qubo = qsmt_qubo::QuboModel::new(n * BITS_PER_CHAR);
        for j in 0..n / 2 {
            let mirror = n - 1 - j;
            for i in 0..BITS_PER_CHAR {
                PenaltyBuilder::new(&mut qubo).bits_equal(
                    bit_index(j, i),
                    bit_index(mirror, i),
                    self.strength,
                );
            }
        }
        if !self.bias.is_none() {
            for pos in 0..n {
                self.bias.apply(&mut qubo, pos, self.strength);
            }
        }
        Ok(EncodedProblem {
            qubo,
            decode: DecodeScheme::AsciiString { len: n },
            name: "palindrome",
            description: format!("generate a palindrome of length {n}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::string_to_bits;
    use crate::ops::test_support::exact_texts;

    fn is_palindrome(s: &str) -> bool {
        let f: Vec<char> = s.chars().collect();
        let r: Vec<char> = s.chars().rev().collect();
        f == r
    }

    #[test]
    fn ground_states_of_length_2_are_exactly_palindromes() {
        // 14 vars: exhaustively checkable. 2^7 = 128 palindromes "cc".
        let p = Palindrome::new(2).encode().unwrap();
        let texts = exact_texts(&p);
        assert_eq!(texts.len(), 128);
        for t in &texts {
            assert!(is_palindrome(t), "{t:?}");
        }
    }

    #[test]
    fn length_3_middle_char_is_free() {
        // 21 vars: mirrored outer chars (128) × free middle (128) = 16384.
        let p = Palindrome::new(3).encode().unwrap();
        let texts = exact_texts(&p);
        assert_eq!(texts.len(), 128 * 128);
        for t in texts.iter().take(50) {
            assert!(is_palindrome(t));
        }
    }

    #[test]
    fn non_palindromes_pay_per_disagreeing_bit() {
        let p = Palindrome::new(2).encode().unwrap();
        let good = string_to_bits("aa").unwrap();
        assert_eq!(p.qubo.energy(&good), 0.0);
        // 'a' vs 'b': 1100001 vs 1100010 differ in two bits.
        let bad = string_to_bits("ab").unwrap();
        assert_eq!(p.qubo.energy(&bad), 2.0);
    }

    #[test]
    fn matrix_shape_matches_table1() {
        // Diagonal +A, mirrored coupling −2A.
        let p = Palindrome::new(2).encode().unwrap();
        assert_eq!(p.qubo.linear(0), 1.0);
        assert_eq!(p.qubo.linear(7), 1.0);
        assert_eq!(p.qubo.quadratic(0, 7), -2.0);
    }

    #[test]
    fn symmetric_bias_preserves_palindromes() {
        let p = Palindrome::new(2)
            .with_bias(BiasProfile::lowercase_block())
            .encode()
            .unwrap();
        for t in exact_texts(&p) {
            assert!(is_palindrome(&t));
            let b = t.as_bytes()[0];
            assert!((0x60..=0x7f).contains(&b));
        }
    }

    #[test]
    fn single_character_is_trivially_palindromic() {
        let p = Palindrome::new(1).encode().unwrap();
        assert_eq!(exact_texts(&p).len(), 128);
    }

    #[test]
    fn zero_length_rejected() {
        assert!(Palindrome::new(0).encode().is_err());
    }
}
