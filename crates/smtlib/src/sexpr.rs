//! S-expression layer between the lexer and the command parser.

use crate::lexer::{lex, LexError, Token};

/// An S-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExpr {
    /// A bare symbol.
    Symbol(String),
    /// A keyword (`:name`).
    Keyword(String),
    /// A string literal.
    Str(String),
    /// A numeral.
    Num(u64),
    /// A parenthesized list.
    List(Vec<SExpr>),
}

impl SExpr {
    /// The symbol text, if this is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            SExpr::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// The list elements, if this is a list.
    pub fn as_list(&self) -> Option<&[SExpr]> {
        match self {
            SExpr::List(l) => Some(l),
            _ => None,
        }
    }
}

impl std::fmt::Display for SExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SExpr::Symbol(s) => write!(f, "{s}"),
            SExpr::Keyword(k) => write!(f, ":{k}"),
            SExpr::Str(s) => write!(f, "\"{}\"", s.replace('"', "\"\"")),
            SExpr::Num(n) => write!(f, "{n}"),
            SExpr::List(items) => {
                write!(f, "(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parse error for the S-expression layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SExprError {
    /// Lexing failed.
    Lex(LexError),
    /// A `)` without a matching `(`.
    UnbalancedClose,
    /// Input ended inside a list.
    UnexpectedEof,
}

impl std::fmt::Display for SExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SExprError::Lex(e) => write!(f, "{e}"),
            SExprError::UnbalancedClose => write!(f, "unbalanced ')'"),
            SExprError::UnexpectedEof => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for SExprError {}

impl From<LexError> for SExprError {
    fn from(e: LexError) -> Self {
        SExprError::Lex(e)
    }
}

/// Parses a full source file into its top-level S-expressions.
pub fn parse_sexprs(src: &str) -> Result<Vec<SExpr>, SExprError> {
    let tokens = lex(src)?;
    let mut stack: Vec<Vec<SExpr>> = vec![Vec::new()];
    for tok in tokens {
        match tok {
            Token::LParen => stack.push(Vec::new()),
            Token::RParen => {
                let done = stack.pop().ok_or(SExprError::UnbalancedClose)?;
                let parent = stack.last_mut().ok_or(SExprError::UnbalancedClose)?;
                parent.push(SExpr::List(done));
            }
            Token::Symbol(s) => push(&mut stack, SExpr::Symbol(s))?,
            Token::Keyword(k) => push(&mut stack, SExpr::Keyword(k))?,
            Token::StringLit(s) => push(&mut stack, SExpr::Str(s))?,
            Token::Numeral(n) => push(&mut stack, SExpr::Num(n))?,
        }
    }
    if stack.len() != 1 {
        return Err(SExprError::UnexpectedEof);
    }
    Ok(stack.pop().expect("one frame"))
}

fn push(stack: &mut [Vec<SExpr>], e: SExpr) -> Result<(), SExprError> {
    stack.last_mut().ok_or(SExprError::UnbalancedClose)?.push(e);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_lists() {
        let es = parse_sexprs("(a (b c) 3 \"s\")").unwrap();
        assert_eq!(
            es,
            vec![SExpr::List(vec![
                SExpr::Symbol("a".into()),
                SExpr::List(vec![SExpr::Symbol("b".into()), SExpr::Symbol("c".into())]),
                SExpr::Num(3),
                SExpr::Str("s".into()),
            ])]
        );
    }

    #[test]
    fn multiple_top_level_forms() {
        let es = parse_sexprs("(a) (b)").unwrap();
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn balance_errors() {
        assert_eq!(parse_sexprs("(a"), Err(SExprError::UnexpectedEof));
        assert_eq!(parse_sexprs(")"), Err(SExprError::UnbalancedClose));
    }

    #[test]
    fn display_round_trips() {
        let src = "(assert (= x \"say \"\"hi\"\"\")) (check-sat)";
        let es = parse_sexprs(src).unwrap();
        let printed: Vec<String> = es.iter().map(ToString::to_string).collect();
        let reparsed = parse_sexprs(&printed.join(" ")).unwrap();
        assert_eq!(es, reparsed);
    }

    #[test]
    fn accessors() {
        let e = SExpr::Symbol("x".into());
        assert_eq!(e.as_symbol(), Some("x"));
        assert!(e.as_list().is_none());
    }
}
