//! End-to-end tests for the simultaneous-conjunction extension and the
//! simulated quantum annealer: merged QUBOs solved across the full stack,
//! including through the SMT-LIB front end.

use qsmt::{Constraint, SatStatus, Script, SimulatedQuantumAnnealer, Solution, StringSolver};
use std::sync::Arc;

#[test]
fn merged_palindrome_with_pinned_char_solves() {
    let c = Constraint::All(vec![
        Constraint::Palindrome { len: 5 },
        Constraint::CharAt {
            ch: 'x',
            index: 0,
            len: 5,
        },
    ]);
    let out = StringSolver::with_defaults()
        .with_seed(21)
        .solve(&c)
        .expect("encodes");
    assert!(out.valid, "conjunction must validate");
    let t = out.solution.as_text().expect("text");
    assert!(t.starts_with('x') && t.ends_with('x'));
    assert_eq!(t.chars().rev().collect::<String>(), t);
}

#[test]
fn merged_regex_with_suffix() {
    let c = Constraint::All(vec![
        Constraint::Regex {
            pattern: "a[bc]+".into(),
            len: 4,
        },
        Constraint::Suffix {
            suffix: "c".into(),
            len: 4,
        },
    ]);
    let out = StringSolver::with_defaults()
        .with_seed(5)
        .solve(&c)
        .expect("encodes");
    assert!(out.valid);
    let t = out.solution.as_text().expect("text");
    assert!(t.starts_with('a') && t.ends_with('c'), "{t:?}");
}

#[test]
fn smtlib_conjunction_end_to_end() {
    let script = Script::parse(
        "(declare-const s String)\
         (assert (str.prefixof \"a\" s))\
         (assert (= s (str.rev s)))\
         (assert (= (str.len s) 3))",
    )
    .expect("parses");
    let out = script
        .solve(&StringSolver::with_defaults().with_seed(31))
        .expect("solves");
    assert_eq!(out.status, SatStatus::Sat);
    let qsmt::smtlib::ModelValue::Str(s) = &out.model[0].1 else {
        panic!()
    };
    assert!(s.starts_with('a') && s.ends_with('a'));
    assert_eq!(s.chars().rev().collect::<String>(), *s);
}

#[test]
fn contradictory_conjunction_reports_unknown_not_sat() {
    // S[0] = 'a' and S[0] = 'b' cannot both hold; the merged QUBO still
    // anneals but validation must reject every sample.
    let script = Script::parse(
        "(declare-const s String)\
         (assert (= (str.at s 0) \"a\"))\
         (assert (= (str.at s 0) \"b\"))\
         (assert (= (str.len s) 2))",
    )
    .expect("parses");
    let out = script
        .solve(&StringSolver::with_defaults().with_seed(2))
        .expect("solves");
    assert_eq!(out.status, SatStatus::Unknown);
}

#[test]
fn quantum_annealer_backend_solves_table1_style_rows() {
    let sqa = SimulatedQuantumAnnealer::new()
        .with_seed(17)
        .with_num_reads(24)
        .with_sweeps(384);
    let solver = StringSolver::new(Arc::new(sqa));
    assert_eq!(solver.sampler_name(), "simulated-quantum-annealing");

    let rev = solver
        .solve(&Constraint::Reverse {
            input: "hello".into(),
        })
        .expect("encodes");
    assert_eq!(rev.solution.as_text(), Some("olleh"));
    assert!(rev.valid);

    let pal = solver
        .solve(&Constraint::Palindrome { len: 4 })
        .expect("encodes");
    assert!(pal.valid, "SQA palindrome must validate");
}

#[test]
fn quantum_annealer_matches_exact_on_small_conjunction() {
    let c = Constraint::All(vec![
        Constraint::Prefix {
            prefix: "a".into(),
            len: 2,
        },
        Constraint::Suffix {
            suffix: "b".into(),
            len: 2,
        },
    ]);
    let p = c.encode().expect("encodes");
    let (ground, _) = qsmt::ExactSolver::new().ground_states(&p.qubo);
    let sqa = SimulatedQuantumAnnealer::new()
        .with_seed(9)
        .with_num_reads(16);
    let set = qsmt::Sampler::sample(&sqa, &p.qubo);
    assert!((set.lowest_energy().unwrap() - ground).abs() < 1e-9);
    let best = p.decode_state(&set.best().unwrap().state).expect("decodes");
    assert_eq!(best, Solution::Text("ab".into()));
}

#[test]
fn classical_baseline_solves_conjunctions_too() {
    let c = Constraint::All(vec![
        Constraint::Palindrome { len: 3 },
        Constraint::Prefix {
            prefix: "a".into(),
            len: 3,
        },
    ]);
    let r = qsmt::baseline::ClassicalSolver::new().solve(&c);
    let Some(Solution::Text(t)) = r.solution else {
        panic!("classical solver must find a witness")
    };
    assert!(c.validate(&Solution::Text(t)));
}
