//! Compiled CSR adjacency form of a QUBO model for fast sampling.
//!
//! Samplers flip one bit at a time; recomputing the full energy per flip is
//! O(n + m). [`CompiledQubo`] stores, per variable, the list of (neighbor,
//! coefficient) pairs so a flip delta costs O(degree), and energy can be
//! maintained incrementally across an entire anneal.

use crate::{QuboModel, Var};

/// An immutable, cache-friendly compilation of a [`QuboModel`].
///
/// The neighbor lists are stored in one contiguous arena (`neighbors`) with
/// per-variable extents (`starts`), i.e. compressed sparse row layout. Each
/// undirected interaction `(i, j, q)` appears twice: once under `i` and once
/// under `j`.
#[derive(Debug, Clone)]
pub struct CompiledQubo {
    num_vars: usize,
    linear: Vec<f64>,
    offset: f64,
    starts: Vec<u32>,
    neighbors: Vec<(Var, f64)>,
}

impl CompiledQubo {
    /// Compiles a sparse model into CSR form.
    pub fn compile(model: &QuboModel) -> Self {
        let n = model.num_vars();
        let mut degree = vec![0u32; n];
        for (i, j, _) in model.quadratic_iter() {
            degree[i as usize] += 1;
            degree[j as usize] += 1;
        }
        let mut starts = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &d in &degree {
            starts.push(acc);
            acc += d;
        }
        starts.push(acc);
        let mut cursor: Vec<u32> = starts[..n].to_vec();
        let mut neighbors = vec![(0 as Var, 0.0f64); acc as usize];
        for (i, j, q) in model.quadratic_iter() {
            neighbors[cursor[i as usize] as usize] = (j, q);
            cursor[i as usize] += 1;
            neighbors[cursor[j as usize] as usize] = (i, q);
            cursor[j as usize] += 1;
        }
        Self {
            num_vars: n,
            linear: model.linear_terms().to_vec(),
            offset: model.offset(),
            starts,
            neighbors,
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Constant offset carried over from the source model.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Linear coefficient of variable `i`.
    #[inline]
    pub fn linear(&self, i: Var) -> f64 {
        self.linear[i as usize]
    }

    /// Neighbor list of variable `i` as `(neighbor, coefficient)` pairs.
    #[inline]
    pub fn neighbors(&self, i: Var) -> &[(Var, f64)] {
        let s = self.starts[i as usize] as usize;
        let e = self.starts[i as usize + 1] as usize;
        &self.neighbors[s..e]
    }

    /// Degree (number of quadratic interactions) of variable `i`.
    #[inline]
    pub fn degree(&self, i: Var) -> usize {
        self.neighbors(i).len()
    }

    /// Full energy of a state; O(n + m). Matches [`QuboModel::energy`].
    pub fn energy(&self, state: &[u8]) -> f64 {
        assert_eq!(state.len(), self.num_vars, "state length mismatch");
        crate::debug_check_state(state);
        let mut e = self.offset;
        for i in 0..self.num_vars {
            if state[i] == 1 {
                e += self.linear[i];
                // Each interaction appears twice in CSR; count it only from
                // the lower-indexed endpoint to avoid double counting.
                for &(j, q) in self.neighbors(i as Var) {
                    if (j as usize) > i && state[j as usize] == 1 {
                        e += q;
                    }
                }
            }
        }
        e
    }

    /// Energy change from flipping variable `i` in `state`, in O(degree).
    ///
    /// If `x_i` is currently 0 this is the cost of setting it; if 1, of
    /// clearing it:
    ///
    /// ```text
    /// ΔE = (1 - 2·x_i) · (q_ii + Σ_j q_ij·x_j)
    /// ```
    #[inline]
    pub fn flip_delta(&self, state: &[u8], i: Var) -> f64 {
        let mut field = self.linear[i as usize];
        for &(j, q) in self.neighbors(i) {
            if state[j as usize] == 1 {
                field += q;
            }
        }
        let sign = 1.0 - 2.0 * state[i as usize] as f64;
        sign * field
    }

    /// The largest possible |ΔE| of any single flip, ignoring the state:
    /// `max_i (|q_ii| + Σ_j |q_ij|)`. Used to pick annealing temperature
    /// ranges. Returns 0.0 for an empty model.
    pub fn max_flip_magnitude(&self) -> f64 {
        (0..self.num_vars)
            .map(|i| {
                let mut m = self.linear[i].abs();
                for &(_, q) in self.neighbors(i as Var) {
                    m += q.abs();
                }
                m
            })
            .fold(0.0f64, f64::max)
    }

    /// The smallest nonzero |coefficient| in the model; used as a proxy for
    /// the smallest energy barrier when auto-deriving β schedules. Returns
    /// `None` for an all-zero model.
    pub fn min_nonzero_magnitude(&self) -> Option<f64> {
        let mut m = f64::INFINITY;
        for &l in &self.linear {
            if l != 0.0 {
                m = m.min(l.abs());
            }
        }
        for &(_, q) in &self.neighbors {
            if q != 0.0 {
                m = m.min(q.abs());
            }
        }
        (m != f64::INFINITY).then_some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = QuboModel::new(n);
        for i in 0..n as Var {
            m.add_linear(i, rng.gen_range(-2.0..2.0));
        }
        for i in 0..n as Var {
            for j in (i + 1)..n as Var {
                if rng.gen_bool(0.4) {
                    m.add_quadratic(i, j, rng.gen_range(-2.0..2.0));
                }
            }
        }
        m.add_offset(rng.gen_range(-1.0..1.0));
        m
    }

    fn random_state(n: usize, rng: &mut SmallRng) -> Vec<u8> {
        (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
    }

    #[test]
    fn compiled_energy_matches_sparse_energy() {
        let mut rng = SmallRng::seed_from_u64(7);
        for seed in 0..20 {
            let m = random_model(12, seed);
            let c = CompiledQubo::compile(&m);
            for _ in 0..10 {
                let s = random_state(12, &mut rng);
                assert!((m.energy(&s) - c.energy(&s)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flip_delta_matches_recomputed_energy() {
        let mut rng = SmallRng::seed_from_u64(11);
        let m = random_model(10, 3);
        let c = CompiledQubo::compile(&m);
        for _ in 0..50 {
            let mut s = random_state(10, &mut rng);
            let i = rng.gen_range(0..10) as Var;
            let before = c.energy(&s);
            let delta = c.flip_delta(&s, i);
            s[i as usize] ^= 1;
            let after = c.energy(&s);
            assert!(
                (after - before - delta).abs() < 1e-9,
                "delta mismatch: {delta} vs {}",
                after - before
            );
        }
    }

    #[test]
    fn degrees_count_both_endpoints() {
        let mut m = QuboModel::new(3);
        m.add_quadratic(0, 1, 1.0);
        m.add_quadratic(0, 2, 1.0);
        let c = CompiledQubo::compile(&m);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(1), 1);
        assert_eq!(c.degree(2), 1);
    }

    #[test]
    fn max_flip_magnitude_bounds_every_delta() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = random_model(8, 9);
        let c = CompiledQubo::compile(&m);
        let bound = c.max_flip_magnitude();
        for _ in 0..200 {
            let s = random_state(8, &mut rng);
            let i = rng.gen_range(0..8) as Var;
            assert!(c.flip_delta(&s, i).abs() <= bound + 1e-12);
        }
    }

    #[test]
    fn min_nonzero_magnitude_none_for_zero_model() {
        let c = CompiledQubo::compile(&QuboModel::new(4));
        assert!(c.min_nonzero_magnitude().is_none());
        assert_eq!(c.max_flip_magnitude(), 0.0);
    }
}
