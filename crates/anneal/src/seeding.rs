//! Per-read RNG stream derivation.
//!
//! Deriving read streams as `seed + read_index` makes adjacent base seeds
//! share almost all of their read streams: seed 7 with 32 reads and seed 8
//! with 32 reads overlap on 31 of them, so "independent" experiment arms
//! silently reuse randomness. Hashing `(seed, read_index)` through the
//! SplitMix64 finalizer gives every `(seed, index)` pair its own
//! well-mixed stream while staying a pure deterministic function — the
//! parallel-equals-sequential guarantee of every sampler is untouched.

/// Weyl increment of SplitMix64 (odd, so `k ↦ k·GAMMA` is a bijection on
/// `u64`).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG seed for read `index` of a run keyed by `seed`.
///
/// Equivalent to the `index`-th output of a SplitMix64 generator started
/// at `seed`: collision-free across indexes for a fixed seed, and
/// adjacent seeds land `2⁶⁴/GAMMA` apart in the underlying sequence, so
/// no realistic read count overlaps them.
#[inline]
pub fn read_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_distinct_within_a_run() {
        let seeds: HashSet<u64> = (0..10_000).map(|r| read_seed(5, r)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn adjacent_base_seeds_share_no_streams() {
        // The historical seed + index scheme failed exactly this check.
        let a: HashSet<u64> = (0..4096).map(|r| read_seed(100, r)).collect();
        let b: HashSet<u64> = (0..4096).map(|r| read_seed(101, r)).collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn deterministic() {
        assert_eq!(read_seed(3, 9), read_seed(3, 9));
        assert_ne!(read_seed(3, 9), read_seed(3, 10));
        assert_ne!(read_seed(3, 9), read_seed(4, 9));
    }
}
