//! Errors raised while compiling constraints to QUBO form.

use crate::encode::EncodeError;
use qsmt_redex::ParseError;

/// A constraint could not be encoded.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintError {
    /// A string argument contained a non-ASCII character.
    NonAscii(EncodeError),
    /// The substring is longer than the string that must contain it.
    SubstringTooLong {
        /// Substring length.
        substring: usize,
        /// Containing string length.
        total: usize,
    },
    /// A placement index does not leave room for the substring.
    IndexOutOfRange {
        /// Requested start index.
        index: usize,
        /// Substring length.
        substring: usize,
        /// Containing string length.
        total: usize,
    },
    /// The desired length exceeds the number of available slots.
    LengthOutOfRange {
        /// Desired length.
        desired: usize,
        /// Available character slots.
        slots: usize,
    },
    /// The regex pattern failed to parse.
    RegexSyntax(ParseError),
    /// The regex has no match of the requested length.
    RegexUnsatisfiable {
        /// The pattern text.
        pattern: String,
        /// The requested length.
        len: usize,
    },
    /// An argument that must be nonempty was empty.
    EmptyArgument {
        /// Which argument.
        what: &'static str,
    },
    /// A conjunction combined constraints that do not share one string
    /// variable space (different generated lengths or non-text decodes).
    IncompatibleConjunction {
        /// Why the parts cannot be merged.
        reason: String,
    },
    /// The compiled QUBO failed the formulation linter and the solver is
    /// configured to deny error-level diagnostics
    /// ([`crate::StringSolver::with_deny_lint_errors`]).
    LintRejected {
        /// The lint report's summary line plus the triggered codes.
        summary: String,
    },
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::NonAscii(e) => write!(f, "{e}"),
            ConstraintError::SubstringTooLong { substring, total } => write!(
                f,
                "substring of length {substring} cannot fit in a string of length {total}"
            ),
            ConstraintError::IndexOutOfRange {
                index,
                substring,
                total,
            } => write!(
                f,
                "substring of length {substring} at index {index} overflows a string of length {total}"
            ),
            ConstraintError::LengthOutOfRange { desired, slots } => {
                write!(f, "desired length {desired} exceeds the {slots} available slots")
            }
            ConstraintError::RegexSyntax(e) => write!(f, "{e}"),
            ConstraintError::RegexUnsatisfiable { pattern, len } => {
                write!(f, "regex {pattern:?} has no match of length {len}")
            }
            ConstraintError::EmptyArgument { what } => {
                write!(f, "argument {what:?} must be nonempty")
            }
            ConstraintError::IncompatibleConjunction { reason } => {
                write!(f, "constraints cannot be conjoined: {reason}")
            }
            ConstraintError::LintRejected { summary } => {
                write!(f, "formulation rejected by linter: {summary}")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

impl From<EncodeError> for ConstraintError {
    fn from(e: EncodeError) -> Self {
        ConstraintError::NonAscii(e)
    }
}

impl From<ParseError> for ConstraintError {
    fn from(e: ParseError) -> Self {
        ConstraintError::RegexSyntax(e)
    }
}
