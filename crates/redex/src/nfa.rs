//! Thompson NFA construction and subset-simulation matching.

use crate::{ClassSet, Regex};

/// One NFA transition label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Label {
    /// Consume one character matching the predicate.
    Char(CharPred),
    /// Consume nothing.
    Epsilon,
}

/// A character predicate on an NFA edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CharPred {
    Lit(char),
    Class(ClassSet),
    Dot,
}

impl CharPred {
    pub(crate) fn matches(&self, c: char) -> bool {
        match self {
            CharPred::Lit(l) => *l == c,
            CharPred::Class(cs) => cs.contains(c),
            CharPred::Dot => (' '..='~').contains(&c),
        }
    }
}

#[derive(Debug, Clone)]
struct Edge {
    label: Label,
    to: usize,
}

/// A Thompson NFA with a single start and single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    edges: Vec<Vec<Edge>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Compiles a regex into an NFA via Thompson's construction.
    pub fn compile(re: &Regex) -> Self {
        let mut nfa = Nfa {
            edges: Vec::new(),
            start: 0,
            accept: 0,
        };
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        nfa.build(re, start, accept);
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.edges.len() - 1
    }

    fn add(&mut self, from: usize, label: Label, to: usize) {
        self.edges[from].push(Edge { label, to });
    }

    fn build(&mut self, re: &Regex, from: usize, to: usize) {
        match re {
            Regex::Empty => self.add(from, Label::Epsilon, to),
            Regex::Literal(c) => self.add(from, Label::Char(CharPred::Lit(*c)), to),
            Regex::Class(cs) => self.add(from, Label::Char(CharPred::Class(cs.clone())), to),
            Regex::Dot => self.add(from, Label::Char(CharPred::Dot), to),
            Regex::Concat(parts) => {
                let mut cur = from;
                for (i, p) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(p, cur, next);
                    cur = next;
                }
                if parts.is_empty() {
                    self.add(from, Label::Epsilon, to);
                }
            }
            Regex::Alt(parts) => {
                for p in parts {
                    self.build(p, from, to);
                }
            }
            Regex::Plus(inner) => {
                // from -> s -inner-> t -> to, with t -> s loop
                let s = self.new_state();
                let t = self.new_state();
                self.add(from, Label::Epsilon, s);
                self.build(inner, s, t);
                self.add(t, Label::Epsilon, s);
                self.add(t, Label::Epsilon, to);
            }
            Regex::Star(inner) => {
                let s = self.new_state();
                let t = self.new_state();
                self.add(from, Label::Epsilon, s);
                self.add(from, Label::Epsilon, to);
                self.build(inner, s, t);
                self.add(t, Label::Epsilon, s);
                self.add(t, Label::Epsilon, to);
            }
            Regex::Opt(inner) => {
                self.add(from, Label::Epsilon, to);
                self.build(inner, from, to);
            }
        }
    }

    /// Number of NFA states.
    pub fn num_states(&self) -> usize {
        self.edges.len()
    }

    /// Epsilon closure of a state set (in place, as a boolean mask).
    pub(crate) fn closure(&self, set: &mut [bool]) {
        let mut stack: Vec<usize> = set
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        while let Some(s) = stack.pop() {
            for e in &self.edges[s] {
                if e.label == Label::Epsilon && !set[e.to] {
                    set[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
    }

    /// One simulation step: from `set`, consume `c`.
    pub(crate) fn step(&self, set: &[bool], c: char) -> Vec<bool> {
        let mut next = vec![false; self.edges.len()];
        for (s, &alive) in set.iter().enumerate() {
            if !alive {
                continue;
            }
            for e in &self.edges[s] {
                if let Label::Char(p) = &e.label {
                    if p.matches(c) {
                        next[e.to] = true;
                    }
                }
            }
        }
        self.closure(&mut next);
        next
    }

    /// The start state set (epsilon-closed).
    pub(crate) fn start_set(&self) -> Vec<bool> {
        let mut set = vec![false; self.edges.len()];
        set[self.start] = true;
        self.closure(&mut set);
        set
    }

    /// True when the set contains the accept state.
    pub(crate) fn is_accepting(&self, set: &[bool]) -> bool {
        set[self.accept]
    }

    /// Whole-string match (anchored at both ends, as in the paper's
    /// generation semantics).
    pub fn matches(&self, input: &str) -> bool {
        let mut set = self.start_set();
        for c in input.chars() {
            set = self.step(&set, c);
            if set.iter().all(|&b| !b) {
                return false;
            }
        }
        self.is_accepting(&set)
    }

    /// For each state, can it reach the accept state consuming exactly `k`
    /// characters? Returns a table `reach[k][state]` for `k ∈ 0..=max_len`.
    /// Used by positional analysis and the QUBO encoder.
    pub(crate) fn acceptance_table(&self, max_len: usize) -> Vec<Vec<bool>> {
        let n = self.edges.len();
        // reach[0]: states that can reach accept via epsilons only.
        // Compute reverse-epsilon reachability from accept.
        let mut rev_eps: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut rev_char: Vec<Vec<(usize, CharPred)>> = vec![Vec::new(); n];
        for (s, edges) in self.edges.iter().enumerate() {
            for e in edges {
                match &e.label {
                    Label::Epsilon => rev_eps[e.to].push(s),
                    Label::Char(p) => rev_char[e.to].push((s, p.clone())),
                }
            }
        }
        let eps_close_rev = |set: &mut Vec<bool>| {
            let mut stack: Vec<usize> = set
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i))
                .collect();
            while let Some(s) = stack.pop() {
                for &p in &rev_eps[s] {
                    if !set[p] {
                        set[p] = true;
                        stack.push(p);
                    }
                }
            }
        };
        let mut table = Vec::with_capacity(max_len + 1);
        let mut cur = vec![false; n];
        cur[self.accept] = true;
        eps_close_rev(&mut cur);
        table.push(cur);
        for _ in 0..max_len {
            let prev = table.last().expect("nonempty");
            let mut next = vec![false; n];
            for (t, alive) in prev.iter().enumerate() {
                if !alive {
                    continue;
                }
                for (s, _pred) in &rev_char[t] {
                    next[*s] = true;
                }
            }
            eps_close_rev(&mut next);
            table.push(next);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn nfa(p: &str) -> Nfa {
        Nfa::compile(&parse(p).unwrap())
    }

    #[test]
    fn paper_example_semantics() {
        let n = nfa("a[tyz]+b");
        for good in ["atytyzb", "azb", "atyzb", "atb"] {
            assert!(n.matches(good), "{good} should match");
        }
        for bad in ["ab", "ab b", "atyz", "tyzb", "axb"] {
            assert!(!n.matches(bad), "{bad} should not match");
        }
    }

    #[test]
    fn anchored_matching() {
        let n = nfa("abc");
        assert!(n.matches("abc"));
        assert!(!n.matches("xabc"));
        assert!(!n.matches("abcx"));
    }

    #[test]
    fn star_and_opt() {
        let n = nfa("ab*c?");
        for good in ["a", "ab", "abbb", "ac", "abc", "abbc"] {
            assert!(n.matches(good), "{good}");
        }
        assert!(!n.matches("acc"));
        assert!(!n.matches(""));
    }

    #[test]
    fn alternation() {
        let n = nfa("cat|dog");
        assert!(n.matches("cat") && n.matches("dog"));
        assert!(!n.matches("cog"));
    }

    #[test]
    fn dot_matches_printables_only() {
        let n = nfa("a.c");
        assert!(n.matches("abc") && n.matches("a c"));
        assert!(!n.matches("a\nc"));
    }

    #[test]
    fn empty_regex_matches_only_empty() {
        let n = nfa("");
        assert!(n.matches(""));
        assert!(!n.matches("a"));
    }

    #[test]
    fn acceptance_table_counts_remaining_chars() {
        let n = nfa("ab");
        let table = n.acceptance_table(3);
        // start set can accept after exactly 2 chars
        let start = n.start_set();
        let can = |k: usize| start.iter().zip(&table[k]).any(|(&a, &b)| a && b);
        assert!(!can(0));
        assert!(!can(1));
        assert!(can(2));
        assert!(!can(3));
    }

    #[test]
    fn acceptance_table_with_plus() {
        let n = nfa("a+");
        let table = n.acceptance_table(4);
        let start = n.start_set();
        let can = |k: usize| start.iter().zip(&table[k]).any(|(&a, &b)| a && b);
        assert!(!can(0));
        assert!(can(1) && can(2) && can(4));
    }

    #[test]
    fn negated_class_in_nfa() {
        let n = nfa("[^a]b");
        assert!(n.matches("xb"));
        assert!(!n.matches("ab"));
    }
}
