//! §4.11 Regex matching: generate a fixed-length string matching a
//! pattern.

use crate::encode::{bit_index, char_to_bits, BITS_PER_CHAR};
use crate::error::ConstraintError;
use crate::ops::DEFAULT_STRENGTH;
use crate::problem::{DecodeScheme, EncodedProblem};
use qsmt_redex::{parse, positional_sets, printable_ascii, Regex};

/// The regex-matching encoder (paper §4.11).
///
/// The pattern is expanded into a per-position plan for the requested
/// length: a literal at a position uses the full-strength character
/// objective (±A per bit); a character class *superposes* all its members
/// with coefficients `q_{i,j} / |chars|` — "equal and shared preference"
/// in the paper's words. A `+` after a literal extends the literal; after
/// a class, the class (paper's expansion rule).
///
/// The paper supports literals, classes, and plus. This encoder also
/// accepts the future-work extensions (`*`, `?`, `.`, alternation,
/// groups): positions are planned from the NFA's exact per-position
/// character marginals ([`qsmt_redex::positional_sets`]), which coincide
/// with the paper's plan on its subset.
///
/// **Known relaxation (inherited from the paper):** superposing a class's
/// members averages their bit patterns, so bits on which members disagree
/// become free and the ground-state set can include characters *outside*
/// the class (e.g. `[bc]` admits `` ` `` and `a`). The solver layer closes
/// this gap by validating decoded strings against the real NFA and
/// retrying/post-selecting, mirroring the check-and-refine loop of the
/// DPLL(T) architecture the paper describes in §1.
#[derive(Debug, Clone)]
pub struct RegexMatch {
    pattern: String,
    len: usize,
    strength: f64,
    alphabet: Vec<char>,
}

impl RegexMatch {
    /// Generates a `len`-character string matching `pattern`.
    pub fn new(pattern: impl Into<String>, len: usize) -> Self {
        Self {
            pattern: pattern.into(),
            len,
            strength: DEFAULT_STRENGTH,
            alphabet: printable_ascii(),
        }
    }

    /// Overrides the penalty strength `A`.
    pub fn with_strength(mut self, a: f64) -> Self {
        assert!(a > 0.0, "strength must be positive");
        self.strength = a;
        self
    }

    /// Restricts the alphabet used for positional planning.
    pub fn with_alphabet(mut self, alphabet: Vec<char>) -> Self {
        assert!(!alphabet.is_empty(), "alphabet must be nonempty");
        self.alphabet = alphabet;
        self
    }

    /// The parsed pattern.
    ///
    /// # Errors
    /// Returns the syntax error for malformed patterns.
    pub fn regex(&self) -> Result<Regex, ConstraintError> {
        Ok(parse(&self.pattern)?)
    }

    /// The per-position character plan for the requested length.
    ///
    /// # Errors
    /// Fails on syntax errors or when no match of this length exists.
    pub fn plan(&self) -> Result<Vec<Vec<char>>, ConstraintError> {
        let re = self.regex()?;
        positional_sets(&re, self.len, &self.alphabet).ok_or_else(|| {
            ConstraintError::RegexUnsatisfiable {
                pattern: self.pattern.clone(),
                len: self.len,
            }
        })
    }

    /// Compiles to QUBO form.
    ///
    /// # Errors
    /// Fails on syntax errors, unsatisfiable lengths, or non-ASCII
    /// alphabet members.
    pub fn encode(&self) -> Result<EncodedProblem, ConstraintError> {
        let plan = self.plan()?;
        let a = self.strength;
        let mut qubo = qsmt_qubo::QuboModel::new(self.len * BITS_PER_CHAR);
        for (pos, chars) in plan.iter().enumerate() {
            let share = a / chars.len() as f64;
            for &c in chars {
                let bits = char_to_bits(c)?;
                for (i, &b) in bits.iter().enumerate() {
                    qubo.add_linear(bit_index(pos, i), if b == 1 { -share } else { share });
                }
            }
        }
        Ok(EncodedProblem {
            qubo,
            decode: DecodeScheme::AsciiString { len: self.len },
            name: "regex-match",
            description: format!(
                "generate a {}-character string matching /{}/",
                self.len, self.pattern
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::test_support::exact_texts;
    use qsmt_redex::Nfa;

    #[test]
    fn literal_pattern_reduces_to_equality() {
        let p = RegexMatch::new("ab", 2).encode().unwrap();
        assert_eq!(exact_texts(&p), vec!["ab".to_string()]);
    }

    #[test]
    fn paper_plan_for_a_bc_plus() {
        let plan = RegexMatch::new("a[bc]+", 3).plan().unwrap();
        assert_eq!(plan, vec![vec!['a'], vec!['b', 'c'], vec!['b', 'c']]);
    }

    #[test]
    fn class_superposition_admits_members() {
        let p = RegexMatch::new("a[bc]", 2).encode().unwrap();
        let texts = exact_texts(&p);
        assert!(texts.contains(&"ab".to_string()));
        assert!(texts.contains(&"ac".to_string()));
    }

    #[test]
    fn class_superposition_exact_when_members_differ_in_one_bit() {
        // 'b' (1100010) and 'c' (1100011) differ only in the last bit, so
        // the superposed encoding's ground set is exactly {b, c}.
        let p = RegexMatch::new("a[bc]", 2).encode().unwrap();
        assert_eq!(exact_texts(&p).len(), 2);
    }

    #[test]
    fn class_superposition_relaxation_is_the_papers() {
        // 'b' (1100010) and 'd' (1100100) differ in two bits; averaging
        // frees both, so '`' (1100000) and 'f' (1100110) join the ground
        // set — the documented paper-inherited relaxation the solver's
        // validation layer closes.
        let p = RegexMatch::new("a[bd]", 2).encode().unwrap();
        let texts = exact_texts(&p);
        assert_eq!(texts.len(), 4);
        let nfa = Nfa::compile(&parse("a[bd]").unwrap());
        let valid: Vec<&String> = texts.iter().filter(|t| nfa.matches(t)).collect();
        assert_eq!(valid.len(), 2);
    }

    #[test]
    fn plus_after_literal_extends_literal() {
        let plan = RegexMatch::new("ab+", 3).plan().unwrap();
        assert_eq!(plan, vec![vec!['a'], vec!['b'], vec!['b']]);
        let p = RegexMatch::new("ab+", 3).encode().unwrap();
        assert_eq!(exact_texts(&p), vec!["abb".to_string()]);
    }

    #[test]
    fn extension_alternation_plans_unions() {
        let plan = RegexMatch::new("ab|cd", 2).plan().unwrap();
        assert_eq!(plan, vec![vec!['a', 'c'], vec!['b', 'd']]);
    }

    #[test]
    fn extension_star_and_optional() {
        let plan = RegexMatch::new("ab*", 3).plan().unwrap();
        assert_eq!(plan, vec![vec!['a'], vec!['b'], vec!['b']]);
        let plan2 = RegexMatch::new("ax?b", 2).plan().unwrap();
        assert_eq!(plan2, vec![vec!['a'], vec!['b']]);
    }

    #[test]
    fn unsatisfiable_length_is_an_error() {
        assert!(matches!(
            RegexMatch::new("abc", 2).encode(),
            Err(ConstraintError::RegexUnsatisfiable { .. })
        ));
        assert!(matches!(
            RegexMatch::new("a[bc]+", 1).encode(),
            Err(ConstraintError::RegexUnsatisfiable { .. })
        ));
    }

    #[test]
    fn syntax_error_is_reported() {
        assert!(matches!(
            RegexMatch::new("a[", 2).encode(),
            Err(ConstraintError::RegexSyntax(_))
        ));
    }

    #[test]
    fn restricted_alphabet_narrows_plan() {
        let plan = RegexMatch::new("a.", 2)
            .with_alphabet(vec!['a', 'b'])
            .plan()
            .unwrap();
        assert_eq!(plan, vec![vec!['a'], vec!['a', 'b']]);
    }
}
