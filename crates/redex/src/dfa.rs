//! Deterministic finite automata: subset construction, Hopcroft
//! minimization, and product intersection.
//!
//! The paper's introduction motivates QUBO solving by the cost of
//! classical automata methods: "automata-based techniques can suffer from
//! the high computational cost of operations like automata intersection"
//! (§1). This module implements that classical machinery for real — the
//! crossover benches and the `automata_vs_qubo` example use it as the
//! faithful classical comparator for regex-conjunction constraints.
//!
//! DFAs here are complete over an explicit alphabet (a dead state absorbs
//! missing transitions) with dense transition tables.

use crate::{Nfa, Regex};
use std::collections::HashMap;

/// A complete DFA over an explicit alphabet.
///
/// State 0 is the start state. Transitions are a dense
/// `num_states × alphabet.len()` table.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<char>,
    /// `transitions[s * alphabet.len() + c]` = successor of state `s` on
    /// the `c`-th alphabet character.
    transitions: Vec<u32>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Determinizes an NFA over `alphabet` via subset construction.
    pub fn from_nfa(nfa: &Nfa, alphabet: &[char]) -> Self {
        assert!(!alphabet.is_empty(), "alphabet must be nonempty");
        let k = alphabet.len();
        let start = nfa.start_set();
        let mut index: HashMap<Vec<bool>, u32> = HashMap::new();
        index.insert(start.clone(), 0);
        let mut order: Vec<Vec<bool>> = vec![start];
        let mut transitions: Vec<u32> = Vec::new();
        let mut cursor = 0usize;
        while cursor < order.len() {
            let set = order[cursor].clone();
            for &c in alphabet {
                let next = nfa.step(&set, c);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = order.len() as u32;
                        index.insert(next.clone(), id);
                        order.push(next);
                        id
                    }
                };
                transitions.push(id);
            }
            cursor += 1;
        }
        let accepting = order.iter().map(|s| nfa.is_accepting(s)).collect();
        let _ = k;
        Self {
            alphabet: alphabet.to_vec(),
            transitions,
            accepting,
        }
    }

    /// Compiles a regex directly (Thompson NFA + subset construction).
    pub fn compile(re: &Regex, alphabet: &[char]) -> Self {
        Self::from_nfa(&Nfa::compile(re), alphabet)
    }

    /// Number of DFA states (including any dead state).
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// The alphabet this DFA is complete over.
    pub fn alphabet(&self) -> &[char] {
        &self.alphabet
    }

    #[inline]
    fn char_index(&self, c: char) -> Option<usize> {
        self.alphabet.iter().position(|&a| a == c)
    }

    /// Runs the DFA on an input (anchored match). Characters outside the
    /// alphabet reject.
    pub fn matches(&self, input: &str) -> bool {
        let k = self.alphabet.len();
        let mut state = 0u32;
        for c in input.chars() {
            let Some(ci) = self.char_index(c) else {
                return false;
            };
            state = self.transitions[state as usize * k + ci];
        }
        self.accepting[state as usize]
    }

    /// Product-construction intersection: accepts exactly the strings both
    /// DFAs accept. The state count can be up to `|A|·|B|` — the blow-up
    /// the paper's §1 refers to.
    ///
    /// # Panics
    /// Panics when the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "intersection requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order: Vec<(u32, u32)> = vec![(0, 0)];
        index.insert((0, 0), 0);
        let mut transitions = Vec::new();
        let mut cursor = 0usize;
        while cursor < order.len() {
            let (a, b) = order[cursor];
            for ci in 0..k {
                let na = self.transitions[a as usize * k + ci];
                let nb = other.transitions[b as usize * k + ci];
                let id = match index.get(&(na, nb)) {
                    Some(&id) => id,
                    None => {
                        let id = order.len() as u32;
                        index.insert((na, nb), id);
                        order.push((na, nb));
                        id
                    }
                };
                transitions.push(id);
            }
            cursor += 1;
        }
        let accepting = order
            .iter()
            .map(|&(a, b)| self.accepting[a as usize] && other.accepting[b as usize])
            .collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
        }
    }

    /// Hopcroft-style minimization (implemented as iterative partition
    /// refinement, Moore's algorithm — O(k·n²) worst case, ample for the
    /// sizes here). Unreachable states are already absent by construction.
    pub fn minimize(&self) -> Dfa {
        let n = self.num_states();
        let k = self.alphabet.len();
        // Initial partition: accepting vs non-accepting.
        let mut class: Vec<u32> = self.accepting.iter().map(|&a| u32::from(a)).collect();
        let mut num_classes = 2;
        loop {
            // Signature of a state: (class, classes of successors).
            let mut signature_index: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next_class = vec![0u32; n];
            for s in 0..n {
                let succ: Vec<u32> = (0..k)
                    .map(|ci| class[self.transitions[s * k + ci] as usize])
                    .collect();
                let key = (class[s], succ);
                let next_id = signature_index.len() as u32;
                let id = *signature_index.entry(key).or_insert(next_id);
                next_class[s] = id;
            }
            let new_count = signature_index.len();
            if new_count == num_classes {
                break;
            }
            num_classes = new_count;
            class = next_class;
        }
        // Rebuild with one state per class; make the start's class state 0.
        let start_class = class[0];
        let mut remap = vec![u32::MAX; num_classes];
        remap[start_class as usize] = 0;
        let mut next_id = 1u32;
        for &c in &class {
            if remap[c as usize] == u32::MAX {
                remap[c as usize] = next_id;
                next_id += 1;
            }
        }
        let mut transitions = vec![0u32; num_classes * k];
        let mut accepting = vec![false; num_classes];
        for s in 0..n {
            let ms = remap[class[s] as usize];
            accepting[ms as usize] = self.accepting[s];
            for ci in 0..k {
                transitions[ms as usize * k + ci] =
                    remap[class[self.transitions[s * k + ci] as usize] as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            accepting,
        }
    }

    /// Complement over the same alphabet: accepts exactly the strings
    /// (over the alphabet) this DFA rejects. Completeness of the
    /// transition table makes this a pure accept-flag flip.
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions: self.transitions.clone(),
            accepting: self.accepting.iter().map(|&a| !a).collect(),
        }
    }

    /// Difference `self \ other`: strings this DFA accepts and the other
    /// rejects.
    ///
    /// # Panics
    /// Panics when the alphabets differ.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.intersect(&other.complement())
    }

    /// Language equivalence over the shared alphabet, decided via
    /// symmetric-difference emptiness.
    ///
    /// # Panics
    /// Panics when the alphabets differ.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty() && other.difference(self).is_empty()
    }

    /// Whether the DFA's language (restricted to the alphabet) is empty.
    pub fn is_empty(&self) -> bool {
        // BFS for any reachable accepting state.
        let k = self.alphabet.len();
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            if self.accepting[s as usize] {
                return false;
            }
            for ci in 0..k {
                let t = self.transitions[s as usize * k + ci];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Counts accepted strings of exactly `len` characters by dynamic
    /// programming over the (deterministic) state graph — O(len · states ·
    /// |Σ|), typically far faster than the NFA-set DP in
    /// [`crate::count_matches`] once the DFA is built.
    pub fn count_matches(&self, len: usize) -> u128 {
        let k = self.alphabet.len();
        let n = self.num_states();
        // paths[s]: number of strings of the remaining length accepted
        // from state s.
        let mut paths: Vec<u128> = self.accepting.iter().map(|&a| u128::from(a)).collect();
        for _ in 0..len {
            let mut next = vec![0u128; n];
            for s in 0..n {
                for ci in 0..k {
                    next[s] += paths[self.transitions[s * k + ci] as usize];
                }
            }
            paths = next;
        }
        paths[0]
    }

    /// The lexicographically-first accepted string of exactly `len`
    /// characters, if any (the classical automata-based *solver* for
    /// fixed-length generation queries).
    pub fn first_match(&self, len: usize) -> Option<String> {
        let k = self.alphabet.len();
        // can_finish[j][s]: state s can reach acceptance in exactly j steps.
        let mut can = vec![vec![false; self.num_states()]; len + 1];
        for (s, &a) in self.accepting.iter().enumerate() {
            can[0][s] = a;
        }
        for j in 1..=len {
            for s in 0..self.num_states() {
                can[j][s] = (0..k).any(|ci| can[j - 1][self.transitions[s * k + ci] as usize]);
            }
        }
        if !can[len][0] {
            return None;
        }
        let mut out = String::with_capacity(len);
        let mut state = 0usize;
        for j in (1..=len).rev() {
            let ci = (0..k)
                .find(|&ci| can[j - 1][self.transitions[state * k + ci] as usize])
                .expect("reachability established above");
            out.push(self.alphabet[ci]);
            state = self.transitions[state * k + ci] as usize;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lowercase_ascii, parse};

    fn dfa(pattern: &str) -> Dfa {
        Dfa::compile(&parse(pattern).unwrap(), &lowercase_ascii())
    }

    #[test]
    fn dfa_agrees_with_nfa_on_sample_strings() {
        for pattern in ["a[bc]+", "(ab|ba)*", "a?b{2,3}c", "x|y|z"] {
            let re = parse(pattern).unwrap();
            let nfa = Nfa::compile(&re);
            let d = Dfa::from_nfa(&nfa, &lowercase_ascii());
            for s in [
                "", "a", "ab", "abc", "abcbb", "abba", "bb", "xbb", "abbc", "z",
            ] {
                assert_eq!(
                    d.matches(s),
                    nfa.matches(s),
                    "disagreement on {s:?} for /{pattern}/"
                );
            }
        }
    }

    #[test]
    fn characters_outside_alphabet_reject() {
        let d = dfa("a+");
        assert!(!d.matches("A"));
        assert!(!d.matches("a!"));
    }

    #[test]
    fn intersection_is_conjunction_of_languages() {
        let a = dfa("a[a-z]+"); // starts with a, length ≥ 2
        let b = dfa("[a-z]+z"); // ends with z
        let both = a.intersect(&b);
        assert!(both.matches("az"));
        assert!(both.matches("aqqz"));
        assert!(!both.matches("bz"));
        assert!(!both.matches("ab"));
    }

    #[test]
    fn intersection_state_count_can_multiply() {
        // Divisibility-style languages blow up under intersection: the
        // §1 cost the paper cites.
        let a = dfa("(aa)*"); // even length (over 'a')
        let b = dfa("(aaa)*"); // length divisible by 3
        let both = a.intersect(&b).minimize();
        // a^n accepted iff 6 | n.
        assert!(both.matches(""));
        assert!(both.matches(&"a".repeat(6)));
        assert!(!both.matches(&"a".repeat(2)));
        assert!(!both.matches(&"a".repeat(3)));
        assert!(both.num_states() >= 6, "mod-6 counting needs ≥ 6 states");
    }

    #[test]
    fn minimization_preserves_language_and_shrinks() {
        let d = dfa("(ab|ab)+"); // redundant alternation
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        for s in ["", "ab", "abab", "aba", "ba"] {
            assert_eq!(d.matches(s), m.matches(s));
        }
    }

    #[test]
    fn emptiness_check() {
        let a = dfa("a+");
        let b = dfa("b+");
        assert!(!a.is_empty());
        assert!(a.intersect(&b).is_empty(), "a+ ∩ b+ = ∅");
    }

    #[test]
    fn complement_flips_membership() {
        let d = dfa("a[bc]+");
        let c = d.complement();
        for s in ["", "a", "ab", "abc", "zz", "abb"] {
            assert_ne!(d.matches(s), c.matches(s), "{s:?}");
        }
        // Double complement is the original language.
        assert!(d.equivalent(&c.complement()));
    }

    #[test]
    fn difference_removes_the_other_language() {
        let all = dfa("[ab]+");
        let only_a = dfa("a+");
        let has_b = all.difference(&only_a);
        assert!(has_b.matches("ab") && has_b.matches("b"));
        assert!(!has_b.matches("aa") && !has_b.matches(""));
    }

    #[test]
    fn equivalence_detects_same_language_different_syntax() {
        let a = dfa("(ab|ab)+");
        let b = dfa("ab(ab)*");
        assert!(a.equivalent(&b));
        assert!(!a.equivalent(&dfa("(ab)*")));
        // Minimization preserves equivalence.
        assert!(a.minimize().equivalent(&b));
    }

    #[test]
    fn desugared_bounded_repetition_is_equivalent_to_manual_expansion() {
        let a = dfa("a{2,4}");
        let b = dfa("aa|aaa|aaaa");
        assert!(a.equivalent(&b));
    }

    #[test]
    fn dfa_counting_agrees_with_nfa_counting() {
        use crate::count_matches as nfa_count;
        let alphabet = lowercase_ascii();
        for pattern in ["a[bc]+", "(ab|ba)*", "x{1,3}y", "[a-z]+"] {
            let re = parse(pattern).unwrap();
            let d = Dfa::compile(&re, &alphabet);
            for len in 0..=5 {
                assert_eq!(
                    d.count_matches(len),
                    nfa_count(&re, len, &alphabet),
                    "/{pattern}/ at {len}"
                );
            }
        }
    }

    #[test]
    fn first_match_is_lexicographically_first() {
        let d = dfa("a[bc]+");
        assert_eq!(d.first_match(3), Some("abb".to_string()));
        assert_eq!(d.first_match(1), None);
        let e = dfa("[cb]x");
        assert_eq!(e.first_match(2), Some("bx".to_string()));
    }

    #[test]
    fn first_match_on_intersection_solves_conjunctions_classically() {
        let both = dfa("a[a-z]+").intersect(&dfa("[a-z]+z"));
        let hit = both.first_match(4).expect("satisfiable");
        assert!(hit.starts_with('a') && hit.ends_with('z'));
        assert_eq!(hit, "aaaz");
    }
}
