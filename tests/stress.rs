//! Stack-wide stress tests: randomly generated constraints pushed through
//! the full encode → anneal → decode → validate path, cross-checked
//! against the classical baseline and the exact solver where sizes allow.

use proptest::prelude::*;
use qsmt::baseline::ClassicalSolver;
use qsmt::{Constraint, ExactSolver, Solution, StringSolver};

fn short_word() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::char::range('a', 'e'), 1..=3)
        .prop_map(|v| v.into_iter().collect())
}

/// Random constraints kept small enough for the exact solver (≤ 26 bits
/// where exactness is asserted) yet spanning every deterministic variant.
fn arb_deterministic_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        short_word().prop_map(|target| Constraint::Equality { target }),
        (short_word(), short_word()).prop_map(|(a, b)| Constraint::Concat {
            parts: vec![a, b],
            separator: String::new(),
        }),
        short_word().prop_map(|input| Constraint::Reverse { input }),
        (
            short_word(),
            proptest::char::range('a', 'e'),
            proptest::char::range('a', 'e')
        )
            .prop_map(|(input, from, to)| Constraint::ReplaceAll { input, from, to }),
        (
            short_word(),
            proptest::char::range('a', 'e'),
            proptest::char::range('a', 'e')
        )
            .prop_map(|(input, from, to)| Constraint::ReplaceFirst { input, from, to }),
    ]
}

fn arb_generation_constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        (1usize..=3).prop_map(|len| Constraint::Palindrome { len }),
        (short_word(), 0usize..=1).prop_map(|(s, extra)| {
            let len = s.len() + extra;
            Constraint::SubstringMatch { substring: s, len }
        }),
        (proptest::char::range('a', 'e'), 0usize..=2, 1usize..=3).prop_map(|(ch, index, extra)| {
            let len = index + extra;
            Constraint::CharAt {
                ch,
                index: index.min(len - 1),
                len,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn deterministic_constraints_agree_with_classical(c in arb_deterministic_constraint()) {
        let quantum = StringSolver::with_defaults().with_seed(8).solve(&c).expect("encodes");
        prop_assert!(quantum.valid, "{} must validate", c.describe());
        let classical = ClassicalSolver::new().solve(&c).solution.expect("classical solves");
        prop_assert_eq!(quantum.solution, classical);
    }

    #[test]
    fn generation_constraints_validate_end_to_end(c in arb_generation_constraint()) {
        let out = StringSolver::with_defaults().with_seed(6).solve(&c).expect("encodes");
        prop_assert!(out.valid, "{} produced invalid {}", c.describe(), out.solution);
    }

    #[test]
    fn annealer_matches_exact_ground_on_small_encodings(c in arb_deterministic_constraint()) {
        let p = c.encode().expect("encodes");
        prop_assume!(p.num_vars() <= 24);
        let (ground, _) = ExactSolver::new().ground_states(&p.qubo);
        let out = StringSolver::with_defaults().with_seed(4).solve(&c).expect("encodes");
        prop_assert!((out.energy - ground).abs() < 1e-9,
            "annealer energy {} vs exact {}", out.energy, ground);
    }

    #[test]
    fn conjunctions_of_pins_validate(pins in proptest::collection::vec(
        (proptest::char::range('a', 'e'), 0usize..3), 1..=2))
    {
        let len = 3usize;
        let parts: Vec<Constraint> = pins
            .iter()
            .map(|&(ch, index)| Constraint::CharAt { ch, index, len })
            .collect();
        // Conflicting pins at one index are allowed inputs; only require
        // a valid answer when the conjunction is actually satisfiable.
        let satisfiable = {
            let mut slots: Vec<Option<char>> = vec![None; len];
            let mut ok = true;
            for &(ch, index) in &pins {
                match slots[index] {
                    Some(prev) if prev != ch => ok = false,
                    _ => slots[index] = Some(ch),
                }
            }
            ok
        };
        let c = Constraint::All(parts);
        let out = StringSolver::with_defaults().with_seed(3).solve(&c).expect("encodes");
        if satisfiable {
            prop_assert!(out.valid, "{} should be satisfiable", c.describe());
            prop_assert!(c.validate(&out.solution));
        } else {
            prop_assert!(!out.valid, "contradictory pins cannot validate");
        }
    }

    #[test]
    fn classical_witnesses_satisfy_quantum_validation(c in arb_generation_constraint()) {
        let r = ClassicalSolver::new().solve(&c);
        if let Some(Solution::Text(t)) = r.solution {
            prop_assert!(c.validate(&Solution::Text(t)));
        }
    }
}
