//! # qsmt-anneal — classical samplers for QUBO/Ising models
//!
//! The paper evaluates its formulations on "DWave's Simulated Annealer"
//! (§5), a classical Metropolis sampler over the QUBO energy landscape. This
//! crate is a from-scratch reimplementation of that sampler family — no
//! quantum SDK involved:
//!
//! * [`SimulatedAnnealer`] — single-flip Metropolis with geometric/linear/
//!   custom β schedules and rayon-parallel independent reads; the workhorse
//!   and the direct analog of the sampler the paper used.
//! * [`ParallelTempering`] — replica exchange across a β ladder; better
//!   mixing on rugged landscapes (used as an ablation).
//! * [`TabuSearch`] — deterministic local search with a recency tabu list,
//!   the classical baseline D-Wave ships alongside its annealer.
//! * [`SteepestDescent`] — greedy post-processing to the nearest local
//!   minimum.
//! * [`ExactSolver`] — Gray-code exhaustive enumeration; the ground-truth
//!   oracle for every encoder test in this workspace.
//! * [`RandomSampler`] — uniform states; the null baseline.
//!
//! All samplers implement [`Sampler`] and return a [`SampleSet`] sorted by
//! energy with duplicate states aggregated.
//!
//! ```
//! use qsmt_qubo::QuboModel;
//! use qsmt_anneal::{Sampler, SimulatedAnnealer};
//!
//! // ground state 101 of E = -x0 + x1 - x2
//! let mut m = QuboModel::new(3);
//! m.add_linear(0, -1.0);
//! m.add_linear(1, 1.0);
//! m.add_linear(2, -1.0);
//! let sa = SimulatedAnnealer::new().with_seed(7).with_num_reads(8);
//! let set = sa.sample(&m);
//! assert_eq!(set.best().unwrap().state, vec![1, 0, 1]);
//! ```

#![warn(missing_docs)]

mod accept;
mod descent;
mod exact;
pub mod metrics;
pub mod multi;
mod polished;
mod population;
pub mod probes;
mod random;
mod sa;
mod sampleset;
mod schedule;
mod seeding;
mod sqa;
mod tabu;
mod tempering;
pub mod tune;

pub use accept::{AcceptCounters, AcceptanceTable, LN_ACCEPT_CUTOFF};
pub use descent::SteepestDescent;
pub use exact::ExactSolver;
pub use polished::Polished;
pub use population::PopulationAnnealer;
pub use probes::{ProbeConfig, SamplerDynamics};
pub use random::RandomSampler;
pub use sa::{SimulatedAnnealer, WARM_START_BETA_MAX, WARM_START_BETA_MIN, WARM_START_SWEEPS};
pub use sampleset::{EnergyStats, Sample, SampleSet};
pub use seeding::read_seed;

#[cfg(test)]
mod sampler_stats_tests {
    use super::*;

    #[test]
    fn default_sample_stats_matches_sample_with_empty_counters() {
        let mut m = QuboModel::new(2);
        m.add_linear(0, -1.0);
        let exact = ExactSolver::new();
        let (set, stats) = exact.sample_stats(&m);
        assert_eq!(set, exact.sample(&m));
        assert_eq!(stats, SamplerRunStats::default());
        assert_eq!(stats.acceptance_rate(), None);
    }

    #[test]
    fn acceptance_rate_requires_nonzero_proposals() {
        let full = SamplerRunStats {
            sweeps: Some(10),
            proposals: Some(100),
            accepted: Some(25),
            elapsed_us: None,
            replicas: None,
        };
        assert_eq!(full.acceptance_rate(), Some(0.25));
        let empty = SamplerRunStats {
            sweeps: None,
            proposals: Some(0),
            accepted: Some(0),
            elapsed_us: None,
            replicas: None,
        };
        assert_eq!(empty.acceptance_rate(), None);
    }

    #[test]
    fn throughput_needs_counters_and_elapsed_time() {
        let stats = SamplerRunStats {
            sweeps: Some(10),
            proposals: Some(2_000_000),
            accepted: Some(500_000),
            elapsed_us: Some(1_000_000),
            replicas: Some(64),
        };
        assert_eq!(stats.proposals_per_sec(), Some(2_000_000.0));
        assert_eq!(stats.flips_per_sec(), Some(500_000.0));
        let untimed = SamplerRunStats {
            elapsed_us: None,
            ..stats
        };
        assert_eq!(untimed.proposals_per_sec(), None);
        let instant = SamplerRunStats {
            elapsed_us: Some(0),
            ..stats
        };
        assert_eq!(instant.flips_per_sec(), None);
    }
}
pub use qsmt_qubo::StopFlag;
pub use schedule::BetaSchedule;
pub use sqa::SimulatedQuantumAnnealer;
pub use tabu::TabuSearch;
pub use tempering::ParallelTempering;

use qsmt_qubo::QuboModel;

/// Auxiliary run counters a sampler may expose alongside its samples.
///
/// Every field is optional: samplers that don't track a counter leave it
/// `None` and the telemetry layer reports it as absent rather than zero.
/// The counters must be side effects only — [`Sampler::sample_stats`] is
/// required to return the exact `SampleSet` that [`Sampler::sample`]
/// would, so turning observability on never changes answers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerRunStats {
    /// Sweeps performed per read, for sweep-based samplers.
    pub sweeps: Option<u64>,
    /// Total single-variable moves proposed across all reads.
    pub proposals: Option<u64>,
    /// Proposed moves that were accepted.
    pub accepted: Option<u64>,
    /// Wall-clock time the sampler spent producing the reads,
    /// microseconds, when the sampler timed itself. Feeds the
    /// proposals/flips-per-second throughput surface and the
    /// `BENCH_annealing.json` perf baseline.
    pub elapsed_us: Option<u64>,
    /// Replica lanes the sampler advances together per sweep — the width
    /// of its bit-sliced [`qsmt_qubo::MultiReplicaKernel`] batch (SA: up
    /// to 64 reads per word; PT: the ladder size). `None` for samplers
    /// that walk one configuration at a time.
    pub replicas: Option<u64>,
}

impl SamplerRunStats {
    /// `accepted / proposals`, when both counters are present and at
    /// least one move was proposed.
    pub fn acceptance_rate(&self) -> Option<f64> {
        match (self.proposals, self.accepted) {
            (Some(p), Some(a)) if p > 0 => Some(a as f64 / p as f64),
            _ => None,
        }
    }

    /// Proposal throughput in moves/second, when the sampler counted
    /// proposals and timed itself (and the clock advanced).
    pub fn proposals_per_sec(&self) -> Option<f64> {
        Self::rate(self.proposals, self.elapsed_us)
    }

    /// Accepted-flip throughput in flips/second, when the sampler counted
    /// accepts and timed itself (and the clock advanced).
    pub fn flips_per_sec(&self) -> Option<f64> {
        Self::rate(self.accepted, self.elapsed_us)
    }

    fn rate(count: Option<u64>, elapsed_us: Option<u64>) -> Option<f64> {
        match (count, elapsed_us) {
            (Some(c), Some(us)) if us > 0 => Some(c as f64 * 1e6 / us as f64),
            _ => None,
        }
    }
}

/// A sampler draws low-energy binary assignments from a QUBO model.
///
/// Implementations are configured at construction (reads, sweeps, seeds,
/// schedules) so they can be used as trait objects by the solver facade.
pub trait Sampler: Send + Sync {
    /// Samples the model and returns an energy-sorted, aggregated
    /// [`SampleSet`].
    fn sample(&self, model: &QuboModel) -> SampleSet;

    /// Human-readable sampler name for reports and benches.
    fn name(&self) -> &'static str;

    /// Whether this sampler can start its reads from a caller-supplied
    /// state (reverse annealing). Gates the solve cache's shape-key warm
    /// path: callers check this capability — never the sampler's *name* —
    /// before asking for [`Sampler::warm_started`]. The default is
    /// `false`: a sampler that cannot be seeded takes the cold path, and
    /// the cache truthfully counts the lookup as a miss.
    fn supports_initial_state(&self) -> bool {
        false
    }

    /// Returns a reverse-annealing variant of **this** sampler that
    /// refines `state` instead of annealing from scratch, or `None` when
    /// the sampler cannot accept an initial state. Implementations that
    /// report `true` from [`Sampler::supports_initial_state`] must return
    /// `Some`, preserving their own configuration (reads, seed, stop
    /// flags, instrumentation) — warm starts go through the configured
    /// sampler, which is never silently swapped for a built-in one.
    fn warm_started(&self, state: Vec<u8>) -> Option<std::sync::Arc<dyn Sampler>> {
        let _ = state;
        None
    }

    /// Samples the model, additionally returning run counters for
    /// telemetry. The sample set is identical to [`Sampler::sample`]'s;
    /// the default implementation delegates to it and reports no
    /// counters.
    fn sample_stats(&self, model: &QuboModel) -> (SampleSet, SamplerRunStats) {
        (self.sample(model), SamplerRunStats::default())
    }

    /// Samples the model with trajectory probes, additionally returning
    /// the raw dynamics observations. The sample set is identical to
    /// [`Sampler::sample`]'s — probes observe, they never steer (and in
    /// particular never touch a sampler's RNG streams). The default
    /// implementation delegates to [`Sampler::sample_stats`] and reports
    /// no dynamics; samplers with probes override it and must return an
    /// empty [`SamplerDynamics`] when `config.enabled` is false.
    fn sample_dynamics(
        &self,
        model: &QuboModel,
        config: &ProbeConfig,
    ) -> (SampleSet, SamplerRunStats, SamplerDynamics) {
        let _ = config;
        let (set, stats) = self.sample_stats(model);
        (set, stats, SamplerDynamics::default())
    }
}
