//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the API subset the workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — fast, high quality, and fully
//! deterministic for a fixed seed, which is all the samplers require.
//!
//! It is **not** statistically or bit-for-bit compatible with upstream
//! `rand`; seeds produce different streams. Every consumer in this
//! workspace treats the RNG as an opaque deterministic stream, so only
//! determinism matters.

#![warn(missing_docs)]

/// Core RNG primitive: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the `Standard` distribution in upstream rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor value, used to turn inclusive bounds into exclusive
    /// ones. `None` when `self` is the maximum representable value.
    fn checked_next(self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: span is
                // tiny relative to 2^64 in every workspace call site, so the
                // modulo bias is far below observable levels.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn checked_next(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::sample(rng);
        low + u * (high - low)
    }
    fn checked_next(self) -> Option<Self> {
        Some(self)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f32::sample(rng);
        low + u * (high - low)
    }
    fn checked_next(self) -> Option<Self> {
        Some(self)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: std::ops::RangeBounds<T>,
    {
        use std::ops::Bound;
        let low = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.checked_next().expect("gen_range: bound overflow"),
            Bound::Unbounded => panic!("gen_range: unbounded start not supported"),
        };
        let high = match range.end_bound() {
            Bound::Included(&v) => v.checked_next().expect("gen_range: bound overflow"),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => panic!("gen_range: unbounded end not supported"),
        };
        T::sample_range(self, low, high)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffling and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..=1u8);
            assert!(v <= 1);
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }
}
