//! The solver facade: constraint → QUBO → sampler → decoded, validated
//! answer, with a stage trace reproducing the paper's Figure 1 pipeline.

use crate::cache::{CacheLookup, SolveCache};
use crate::constraint::Constraint;
use crate::error::ConstraintError;
use crate::ops::{BiasProfile, DEFAULT_STRENGTH};
use crate::problem::{EncodedProblem, Solution};
use qsmt_anneal::{metrics, ProbeConfig, SampleSet, Sampler, SamplerDynamics, SimulatedAnnealer};
use qsmt_lint::{lint_qubo, LintConfig, LintReport};
use qsmt_qubo::{DenseQubo, ModelFingerprint, QuboModel, StopFlag};
use qsmt_telemetry::{
    CacheStats, CompileStats, DynamicsStats, EmbeddingStats, HistogramSummary, PresolveStats,
    Recorder, SamplerStats, SelectStats, SolveReport, StageTiming, StallVerdict,
};
use std::sync::Arc;
use std::time::Duration;

/// The quantum(-simulated) string SMT solver.
///
/// Implements the paper's Figure 1 pipeline: take a string operation and
/// its arguments, generate binary variables, encode objective and penalty
/// functions into a QUBO matrix, pass it to a (simulated) annealer, and
/// decode the output back to a string.
///
/// On top of the paper, the solver adds the *consistency check* that the
/// SMT architecture in the paper's §1 calls for: decoded candidates are
/// validated against the constraint's real semantics, and the reported
/// answer is the lowest-energy **valid** sample when one exists
/// (post-selection closes the known relaxations of the superposed-class
/// and degenerate-ground-state encodings).
///
/// ```
/// use qsmt_core::{Constraint, StringSolver};
///
/// let solver = StringSolver::with_defaults().with_seed(7);
/// let out = solver
///     .solve(&Constraint::Reverse { input: "hello".into() })
///     .unwrap();
/// assert_eq!(out.solution.as_text(), Some("olleh"));
/// assert!(out.valid);
/// ```
#[derive(Clone)]
pub struct StringSolver {
    sampler: Arc<dyn Sampler>,
    strength: f64,
    bias: Option<BiasProfile>,
    seed: u64,
    reads: usize,
    lint_config: LintConfig,
    deny_lint_errors: bool,
    stop: Option<StopFlag>,
    cache: Option<Arc<SolveCache>>,
}

impl StringSolver {
    /// Builds a solver around any sampler.
    pub fn new(sampler: Arc<dyn Sampler>) -> Self {
        Self {
            sampler,
            strength: DEFAULT_STRENGTH,
            bias: None,
            seed: 0,
            reads: 64,
            lint_config: LintConfig::default(),
            deny_lint_errors: false,
            stop: None,
            cache: None,
        }
    }

    /// Default configuration: simulated annealing with 64 reads — the
    /// paper's experimental setup.
    pub fn with_defaults() -> Self {
        Self::new(Arc::new(
            SimulatedAnnealer::new().with_num_reads(64).with_sweeps(384),
        ))
    }

    /// Overrides the penalty strength `A` for all encodings.
    pub fn with_strength(mut self, a: f64) -> Self {
        assert!(a > 0.0, "strength must be positive");
        self.strength = a;
        self
    }

    /// Forces a specific bias profile for all flexible encoders
    /// (otherwise each constraint's documented default applies).
    pub fn with_bias(mut self, bias: BiasProfile) -> Self {
        self.bias = Some(bias);
        self
    }

    /// Reseeds the default sampler (rebuilds it; a custom sampler passed
    /// via [`StringSolver::new`] keeps its own seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rebuild_default_sampler();
        self
    }

    /// The base seed portfolio member streams are derived from.
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    pub(crate) fn lint_config(&self) -> &LintConfig {
        &self.lint_config
    }

    pub(crate) fn outer_stop(&self) -> Option<&StopFlag> {
        self.stop.as_ref()
    }

    /// Sets the default sampler's read count. Deeply degenerate encodings
    /// (regex classes over many positions) need more reads for
    /// post-selection to find a valid sample; shallow ones are fine with
    /// fewer. Only affects the built-in annealer, not a custom sampler.
    pub fn with_reads(mut self, reads: usize) -> Self {
        assert!(reads > 0, "need at least one read");
        self.reads = reads;
        self.rebuild_default_sampler();
        self
    }

    /// Overrides the formulation-linter configuration used by
    /// [`StringSolver::lint`] and the deny gate (precision model,
    /// chain-strength heuristic, tolerances).
    pub fn with_lint_config(mut self, cfg: LintConfig) -> Self {
        self.lint_config = cfg;
        self
    }

    /// Enables (or disables) deny-on-error mode: every solve first runs
    /// the formulation linter over the compiled QUBO and refuses to
    /// sample when any error-level diagnostic fires, returning
    /// [`ConstraintError::LintRejected`] instead of a silently-unsound
    /// answer.
    pub fn with_deny_lint_errors(mut self, deny: bool) -> Self {
        self.deny_lint_errors = deny;
        self
    }

    /// Attaches a cooperative deadline: the default annealer polls the
    /// flag at sweep granularity and winds down as soon as it trips,
    /// returning the best assignment reached so far (post-selection then
    /// validates it like any other sample). This is how the solve service
    /// cancels jobs whose deadline expires mid-anneal. Only the built-in
    /// sampler is rebuilt — a custom sampler passed to
    /// [`StringSolver::new`] must wire its own flag (e.g.
    /// `SimulatedAnnealer::with_stop`).
    pub fn with_stop(mut self, stop: StopFlag) -> Self {
        self.stop = Some(stop);
        self.rebuild_default_sampler();
        self
    }

    /// Attaches a shared [`SolveCache`]. Subsequent solves first consult
    /// the cache: an exact fingerprint hit — eligible only when the
    /// cached entry's read budget covers this solver's — replays the
    /// cached sample set through the (deterministic) post-selection path,
    /// bit-identical to the solve that populated it, no sampling; a shape
    /// hit seeds a short reverse-annealing refinement from the cached
    /// ground state through the configured sampler
    /// ([`Sampler::warm_started`]); a miss solves normally and inserts
    /// the result. Cancelled (stop-flagged) solves are never inserted.
    /// See `docs/CACHING.md`.
    pub fn with_cache(mut self, cache: Arc<SolveCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// A completed solve may be cached; one cut short by the cooperative
    /// stop flag carries a truncated sample set and must not be.
    fn completed_without_cancel(&self) -> bool {
        self.stop.as_ref().is_none_or(|s| !s.is_stopped())
    }

    /// The reverse-annealing sampler for a shape-hash warm start: the
    /// *configured* sampler, re-seeded with the cached ground state via
    /// [`Sampler::warm_started`] so its own reads/seed/stop configuration
    /// (and any instrumentation a custom sampler carries) stays in
    /// charge. `None` when the sampler cannot accept an initial state —
    /// callers then sample cold.
    fn warm_sampler(&self, state: Vec<u8>) -> Option<Arc<dyn Sampler>> {
        self.sampler.warm_started(state)
    }

    /// Caches a finished solve unless it was cancelled mid-anneal.
    fn cache_completed(&self, fp: ModelFingerprint, outcome: &SolveOutcome) {
        if let Some(cache) = &self.cache {
            if self.completed_without_cancel() {
                cache.insert(fp, outcome.problem.num_vars(), self.seed, &outcome.samples);
            }
        }
    }

    fn rebuild_default_sampler(&mut self) {
        let mut sampler = SimulatedAnnealer::new()
            .with_num_reads(self.reads)
            .with_sweeps(384)
            .with_seed(self.seed);
        if let Some(stop) = &self.stop {
            sampler = sampler.with_stop(stop.clone());
        }
        self.sampler = Arc::new(sampler);
    }

    /// The sampler's reported name.
    pub fn sampler_name(&self) -> &'static str {
        self.sampler.name()
    }

    /// Encodes a constraint using this solver's strength/bias settings.
    ///
    /// # Errors
    /// Propagates encoding failures.
    pub fn encode(&self, constraint: &Constraint) -> Result<EncodedProblem, ConstraintError> {
        match self.bias {
            Some(bias) => constraint.encode_with(self.strength, bias),
            None if self.strength == DEFAULT_STRENGTH => constraint.encode(),
            None => {
                // Custom strength, default per-constraint bias.
                constraint.encode_with(self.strength, Constraint::default_bias(constraint))
            }
        }
    }

    /// Runs the formulation linter ([`qsmt_lint`]) over the compiled QUBO
    /// without sampling: a static soundness analysis of the encoding
    /// itself (penalty gaps, dead variables, precision erosion, …).
    ///
    /// # Errors
    /// Propagates encoding failures — linting happens after compilation.
    pub fn lint(&self, constraint: &Constraint) -> Result<LintReport, ConstraintError> {
        let problem = self.encode(constraint)?;
        Ok(lint_qubo(&problem.qubo, &self.lint_config))
    }

    /// Deny gate: when deny-on-error mode is on, lint the compiled model
    /// and reject it if any error-level diagnostic fires.
    pub(crate) fn deny_gate(&self, qubo: &QuboModel) -> Result<(), ConstraintError> {
        if !self.deny_lint_errors {
            return Ok(());
        }
        let report = lint_qubo(qubo, &self.lint_config);
        Self::reject_on_errors(&report)
    }

    fn reject_on_errors(report: &LintReport) -> Result<(), ConstraintError> {
        if report.has_errors() {
            let codes = report.codes().join(", ");
            return Err(ConstraintError::LintRejected {
                summary: format!("{} [{codes}]", report.summary()),
            });
        }
        Ok(())
    }

    /// Solves a constraint end to end.
    ///
    /// # Errors
    /// Propagates encoding failures, and — in deny-on-error mode
    /// ([`StringSolver::with_deny_lint_errors`]) — lint rejections.
    /// Sampling itself is infallible.
    pub fn solve(&self, constraint: &Constraint) -> Result<SolveOutcome, ConstraintError> {
        let problem = self.encode(constraint)?;
        self.deny_gate(&problem.qubo)?;
        let Some(cache) = &self.cache else {
            let samples = self.sampler.sample(&problem.qubo);
            return Ok(self.select(constraint, problem, samples));
        };
        let fp = problem.qubo.fingerprint();
        let allow_warm = self.sampler.supports_initial_state();
        match cache.lookup(fp, problem.num_vars(), self.reads as u64, allow_warm) {
            CacheLookup::Exact { samples, .. } => Ok(self.select(constraint, problem, samples)),
            CacheLookup::Warm(state) => {
                let samples = match self.warm_sampler(state) {
                    Some(warm) => warm.sample(&problem.qubo),
                    None => self.sampler.sample(&problem.qubo),
                };
                let outcome = self.select(constraint, problem, samples);
                self.cache_completed(fp, &outcome);
                Ok(outcome)
            }
            CacheLookup::Miss => {
                let samples = self.sampler.sample(&problem.qubo);
                let outcome = self.select(constraint, problem, samples);
                self.cache_completed(fp, &outcome);
                Ok(outcome)
            }
        }
    }

    /// Solves with a full stage trace (the paper's Figure 1).
    ///
    /// # Errors
    /// Propagates encoding failures.
    pub fn solve_traced(
        &self,
        constraint: &Constraint,
    ) -> Result<(SolveOutcome, SolveTrace), ConstraintError> {
        let problem = self.encode(constraint)?;
        self.deny_gate(&problem.qubo)?;
        let dense = DenseQubo::from_model(&problem.qubo);
        let trace_matrix = dense.abbreviated(4, 4);
        let stages = vec![
            TraceStage {
                label: "operation + args".into(),
                detail: constraint.describe(),
            },
            TraceStage {
                label: "binary variables".into(),
                detail: format!("{} binary variables ({})", problem.num_vars(), problem.name),
            },
            TraceStage {
                label: "QUBO matrix".into(),
                detail: format!(
                    "{0}×{0} matrix, {1} off-diagonal interactions, diagonal: {2}\n{3}",
                    problem.num_vars(),
                    problem.qubo.num_interactions(),
                    if dense.is_diagonal() { "yes" } else { "no" },
                    trace_matrix
                ),
            },
            TraceStage {
                label: "annealer".into(),
                detail: format!("sampler: {}", self.sampler.name()),
            },
        ];
        let samples = self.sampler.sample(&problem.qubo);
        let outcome = self.select(constraint, problem, samples);
        let mut stages = stages;
        stages.push(TraceStage {
            label: "decoded output".into(),
            detail: format!(
                "{} (energy {:.3}, valid: {})",
                outcome.solution, outcome.energy, outcome.valid
            ),
        });
        Ok((outcome, SolveTrace { stages }))
    }

    /// Returns up to `limit` *distinct, valid* solutions ordered by
    /// energy — model enumeration for test-generation workloads, where
    /// one witness per branch is rarely enough.
    ///
    /// The degenerate ground states of the paper's generation encodings
    /// (palindromes, regexes, flexible fills) make this natural: one
    /// sampling pass usually surfaces many distinct witnesses.
    ///
    /// # Errors
    /// Propagates encoding failures.
    pub fn solve_many(
        &self,
        constraint: &Constraint,
        limit: usize,
    ) -> Result<Vec<Solution>, ConstraintError> {
        let problem = self.encode(constraint)?;
        self.deny_gate(&problem.qubo)?;
        let samples = self.sampler.sample(&problem.qubo);
        let mut out = Vec::new();
        for sample in samples.iter() {
            if out.len() >= limit {
                break;
            }
            let Ok(solution) = problem.decode_state(&sample.state) else {
                continue;
            };
            if constraint.validate(&solution) && !out.contains(&solution) {
                out.push(solution);
            }
        }
        Ok(out)
    }

    /// Post-selection: lowest-energy sample whose decoding validates;
    /// falls back to the overall best sample when none validates.
    fn select(
        &self,
        constraint: &Constraint,
        problem: EncodedProblem,
        samples: SampleSet,
    ) -> SolveOutcome {
        self.select_counted(constraint, problem, samples).0
    }

    /// [`StringSolver::select`] plus the counters telemetry wants: how
    /// many distinct states were decoded before the search stopped, and
    /// the energy-order rank of the chosen valid sample.
    pub(crate) fn select_counted(
        &self,
        constraint: &Constraint,
        problem: EncodedProblem,
        samples: SampleSet,
    ) -> (SolveOutcome, usize, Option<usize>) {
        let mut best: Option<(Solution, f64)> = None;
        let mut valid_pick: Option<(Solution, f64)> = None;
        let mut decoded = 0usize;
        let mut valid_rank = None;
        for (rank, sample) in samples.iter().enumerate() {
            let Ok(solution) = problem.decode_state(&sample.state) else {
                continue;
            };
            decoded += 1;
            if best.is_none() {
                best = Some((solution.clone(), sample.energy));
            }
            if valid_pick.is_none() && constraint.validate(&solution) {
                valid_pick = Some((solution, sample.energy));
                valid_rank = Some(rank);
            }
            if valid_pick.is_some() {
                break;
            }
        }
        let (solution, energy, valid) = match (valid_pick, best) {
            (Some((s, e)), _) => (s, e, true),
            (None, Some((s, e))) => (s, e, false),
            (None, None) => (Solution::Text(String::new()), f64::NAN, false),
        };
        (
            SolveOutcome {
                problem,
                samples,
                solution,
                energy,
                valid,
            },
            decoded,
            valid_rank,
        )
    }

    /// Solves a constraint end to end, additionally producing the full
    /// observability record: per-stage timings, QUBO shape, presolve and
    /// embedding statistics, sampler counters, and the raw span log. See
    /// `docs/OBSERVABILITY.md` for every field's meaning.
    ///
    /// The solve path is identical to [`StringSolver::solve`] — telemetry
    /// is observational and the sampler's RNG stream is untouched — except
    /// for three extra read-only analyses: a formulation-lint pass
    /// ([`qsmt_lint`]) over the compiled QUBO, a presolve pass, and a
    /// minor-embedding probe onto a Chimera topology sized to fit the
    /// problem (so reports carry chain statistics even when sampling
    /// classically).
    ///
    /// ```
    /// use qsmt_core::{Constraint, StringSolver};
    ///
    /// let solver = StringSolver::with_defaults().with_seed(7);
    /// let (out, report) = solver
    ///     .solve_reported(&Constraint::Reverse { input: "ab".into() })
    ///     .unwrap();
    /// assert_eq!(out.solution.as_text(), Some("ba"));
    /// assert_eq!(report.qubo.num_vars, out.problem.num_vars());
    /// assert!(report.stages.iter().any(|s| s.label == "sample"));
    /// ```
    ///
    /// # Errors
    /// Propagates encoding failures, exactly like [`StringSolver::solve`].
    pub fn solve_reported(
        &self,
        constraint: &Constraint,
    ) -> Result<(SolveOutcome, SolveReport), ConstraintError> {
        fn begin(stages: &mut Vec<StageTiming>, rec: &Recorder, label: &str) -> u64 {
            let start = rec.elapsed_us();
            stages.push(StageTiming {
                label: label.to_string(),
                start_us: start,
                dur_us: 0,
            });
            start
        }

        let rec = Recorder::new();
        let mut stages = Vec::with_capacity(6);

        let start = begin(&mut stages, &rec, "compile");
        let problem = {
            let _s = rec.span("compile");
            let _t = qsmt_trace::span("compile");
            self.encode(constraint)?
        };
        stages.last_mut().expect("pushed").dur_us = rec.elapsed_us() - start;
        let qubo_shape = problem.qubo.shape();
        rec.event(
            "encoded",
            format!("{} vars via {}", qubo_shape.num_vars, problem.name),
        );
        let compile = CompileStats {
            constraint: constraint.describe(),
            encoding: problem.name.to_string(),
            time_us: stages.last().expect("pushed").dur_us,
        };

        let start = begin(&mut stages, &rec, "lint");
        let lint_report = {
            let _s = rec.span("lint");
            let _t = qsmt_trace::span("lint");
            lint_qubo(&problem.qubo, &self.lint_config)
        };
        let lint_us = rec.elapsed_us() - start;
        stages.last_mut().expect("pushed").dur_us = lint_us;
        rec.event("linted", lint_report.summary());
        if self.deny_lint_errors {
            Self::reject_on_errors(&lint_report)?;
        }
        let lint = Some(lint_report.to_stats(lint_us));

        let start = begin(&mut stages, &rec, "presolve");
        let presolve = {
            let _s = rec.span("presolve");
            let _t = qsmt_trace::span("presolve");
            let reduced = qsmt_qubo::presolve(&problem.qubo);
            let original = problem.qubo.num_vars();
            let fixed = reduced.num_fixed();
            PresolveStats {
                time_us: 0, // patched below
                original_vars: original,
                fixed_vars: fixed,
                reduced_vars: original - fixed,
                reduction_ratio: if original == 0 {
                    0.0
                } else {
                    fixed as f64 / original as f64
                },
            }
        };
        let presolve_us = rec.elapsed_us() - start;
        stages.last_mut().expect("pushed").dur_us = presolve_us;
        let presolve = PresolveStats {
            time_us: presolve_us,
            ..presolve
        };

        let start = begin(&mut stages, &rec, "embed");
        let embedding = {
            let _s = rec.span("embed");
            let _t = qsmt_trace::span("embed");
            self.probe_embedding(&problem.qubo)
        };
        stages.last_mut().expect("pushed").dur_us = rec.elapsed_us() - start;
        if let Some(e) = &embedding {
            rec.event(
                "embedded",
                format!(
                    "{} logical → {} physical on {}",
                    e.num_logical, e.num_physical_qubits, e.topology
                ),
            );
        }

        let start = begin(&mut stages, &rec, "sample");
        // The trace span stays open until the per-read child spans are
        // spliced in below, so their intervals nest inside it.
        let trace_sample = qsmt_trace::span("sample");
        let trace_base_us = qsmt_trace::active().then(qsmt_trace::now_us);
        // Consult the cache (when attached) before paying for sampling:
        // an exact fingerprint hit replays the cached sample set, a shape
        // hit warm-starts a short reverse anneal, a miss samples cold.
        let lookup = self.cache.as_ref().map(|cache| {
            let fp = problem.qubo.fingerprint();
            let t = std::time::Instant::now();
            let allow_warm = self.sampler.supports_initial_state();
            let found = cache.lookup(fp, problem.num_vars(), self.reads as u64, allow_warm);
            (fp, found, t.elapsed().as_micros() as u64)
        });
        let (samples, run_stats, raw_dynamics, sampler_name, cache_outcome, insert_fp) =
            match lookup {
                Some((
                    _,
                    CacheLookup::Exact {
                        samples,
                        reads,
                        seed,
                    },
                    lookup_us,
                )) => {
                    rec.event("cache", "exact hit: replaying cached sample set");
                    (
                        samples,
                        qsmt_anneal::SamplerRunStats::default(),
                        SamplerDynamics::default(),
                        "cache",
                        Some(("exact-hit", lookup_us, Some((reads, seed)))),
                        None,
                    )
                }
                Some((fp, CacheLookup::Warm(state), lookup_us)) => {
                    rec.event("cache", "shape hit: warm-starting reverse anneal");
                    let _s = rec.span("sample");
                    // `supports_initial_state` gated the warm lookup, so
                    // the configured sampler provides the warm variant;
                    // fall back to a cold run if a custom sampler breaks
                    // that contract.
                    let warm = self.warm_sampler(state);
                    let (samples, run_stats, raw) = warm
                        .as_deref()
                        .unwrap_or(&*self.sampler)
                        .sample_dynamics(&problem.qubo, &ProbeConfig::default());
                    (
                        samples,
                        run_stats,
                        raw,
                        self.sampler.name(),
                        Some(("warm-start", lookup_us, None)),
                        Some(fp),
                    )
                }
                other => {
                    let (cache_outcome, insert_fp) = match &other {
                        Some((fp, _, lookup_us)) => (Some(("miss", *lookup_us, None)), Some(*fp)),
                        None => (None, None),
                    };
                    let _s = rec.span("sample");
                    // Trajectory probes observe, never steer: the sample
                    // set is bit-identical to the un-probed path (pinned
                    // by tests).
                    let (samples, run_stats, raw) = self
                        .sampler
                        .sample_dynamics(&problem.qubo, &ProbeConfig::default());
                    (
                        samples,
                        run_stats,
                        raw,
                        self.sampler.name(),
                        cache_outcome,
                        insert_fp,
                    )
                }
            };
        let sample_us = rec.elapsed_us() - start;
        stages.last_mut().expect("pushed").dur_us = sample_us;
        // Splice the sampler's per-read wall-clock intervals (measured
        // relative to its own start) onto the trace axis as children of
        // the still-open sample span. `trace_base_us` was captured just
        // before sampling began, so read intervals stay contained.
        if let Some(base_us) = trace_base_us {
            for (i, &(offset_us, dur_us)) in raw_dynamics.read_spans.iter().enumerate() {
                qsmt_trace::span_at(&format!("read {i}"), base_us + offset_us, dur_us);
            }
        }
        drop(trace_sample);
        let sampling = Self::sampler_stats(sampler_name, &samples, run_stats, sample_us);
        let dynamics = Self::dynamics_stats(raw_dynamics, run_stats.acceptance_rate());
        if let Some(d) = &dynamics {
            rec.event(
                "dynamics",
                format!("{} trajectory", d.stall_verdict.as_str()),
            );
        }
        let cache_stats = cache_outcome.map(|(outcome, lookup_us, source)| CacheStats {
            outcome: outcome.to_string(),
            lookup_us,
            warm_sweeps: (outcome == "warm-start")
                .then_some(run_stats.sweeps)
                .flatten(),
            source_reads: source.map(|(reads, _)| reads),
            source_seed: source.map(|(_, seed)| seed),
        });

        let start = begin(&mut stages, &rec, "select");
        let (outcome, decoded, valid_rank) = {
            let _s = rec.span("select");
            let _t = qsmt_trace::span("select");
            self.select_counted(constraint, problem, samples)
        };
        stages.last_mut().expect("pushed").dur_us = rec.elapsed_us() - start;
        let select = SelectStats {
            time_us: stages.last().expect("pushed").dur_us,
            decoded_states: decoded,
            valid_rank,
        };

        if let Some(fp) = insert_fp {
            self.cache_completed(fp, &outcome);
        }

        let total_us = rec.elapsed_us();
        let report = SolveReport {
            constraint: constraint.describe(),
            solution: outcome.solution.to_string(),
            energy: outcome.energy,
            valid: outcome.valid,
            total_us,
            stages,
            compile,
            qubo: qubo_shape,
            lint,
            presolve,
            embedding,
            sampling,
            select,
            dynamics,
            cache: cache_stats,
            portfolio: None,
            spans: rec.finish(),
        };
        Ok((outcome, report))
    }

    /// Condenses raw probe observations into the report's `dynamics`
    /// section (schema v4). Returns `None` when the sampler produced no
    /// observations, keeping the section additive over v3 reports.
    fn dynamics_stats(
        raw: SamplerDynamics,
        final_acceptance: Option<f64>,
    ) -> Option<DynamicsStats> {
        if raw.is_empty() {
            return None;
        }
        let time_to_target = DynamicsStats::time_to_target_curve(&raw.energy_trace);
        let last_improvement_fraction = DynamicsStats::last_improvement_fraction(&raw.energy_trace);
        let stall_verdict = StallVerdict::classify(last_improvement_fraction, final_acceptance);
        Some(DynamicsStats {
            energy_trace: raw.energy_trace,
            beta_acceptance: raw.beta_acceptance,
            swap_acceptance: raw.swap_acceptance,
            ess_trace: raw.ess_trace,
            aspiration_hits: raw.aspiration_hits,
            proposal_latency_ns: HistogramSummary::from_samples(&raw.proposal_latency_ns),
            sweep_improvement: HistogramSummary::from_samples(&raw.sweep_improvement),
            time_to_target,
            last_improvement_fraction,
            stall_verdict,
        })
    }

    /// Summarizes a sample set plus sampler counters into telemetry form.
    pub(crate) fn sampler_stats(
        name: &str,
        samples: &SampleSet,
        run: qsmt_anneal::SamplerRunStats,
        time_us: u64,
    ) -> SamplerStats {
        const TOL: f64 = 1e-9;
        let reads = samples.total_reads() as u64;
        let stats = samples.energy_stats();
        let (best, mean, std_dev, max) = match stats {
            Some(s) => (s.min, s.mean, s.std_dev, s.max),
            None => (f64::NAN, f64::NAN, f64::NAN, f64::NAN),
        };
        // Time-to-target: TTS(0.99) against the best energy *this run*
        // observed (the true ground energy is unknown in production).
        let tts99_us = if reads == 0 {
            None
        } else {
            let per_read = Duration::from_micros(time_us / reads.max(1));
            metrics::time_to_solution(samples, best, TOL, per_read, 0.99)
                .map(|d| d.as_micros() as u64)
        };
        // Prefer the sampler's own timing for throughput (it excludes
        // compile/aggregation overhead the stage clock includes); fall back
        // to the stage time when the sampler didn't time itself.
        let timed = qsmt_anneal::SamplerRunStats {
            elapsed_us: run.elapsed_us.or(Some(time_us)),
            ..run
        };
        SamplerStats {
            sampler: name.to_string(),
            time_us,
            reads,
            distinct_states: samples.len(),
            sweeps: run.sweeps,
            proposals: run.proposals,
            accepted: run.accepted,
            replicas: run.replicas,
            acceptance_rate: run.acceptance_rate(),
            proposals_per_sec: timed.proposals_per_sec(),
            flips_per_sec: timed.flips_per_sec(),
            best_energy: best,
            mean_energy: mean,
            std_dev_energy: std_dev,
            max_energy: max,
            success_fraction: samples.success_fraction(TOL),
            tts99_us,
        }
    }

    /// Projects the logical QUBO onto the smallest Chimera topology that
    /// admits a minor embedding, yielding chain statistics for the report.
    /// Returns `None` for empty models, models too large to probe cheaply
    /// (> 512 variables), and problems the router cannot place within the
    /// size ladder. When a [`SolveCache`] is attached, embeddings are
    /// reused across structurally identical models via the shape hash —
    /// minor embedding depends only on the adjacency structure, so a
    /// coefficient change never invalidates it.
    fn probe_embedding(&self, model: &QuboModel) -> Option<EmbeddingStats> {
        let n = model.num_vars();
        if n == 0 || n > 512 {
            return None;
        }
        let start = std::time::Instant::now();
        let shape = self.cache.as_ref().map(|c| (c, model.fingerprint().shape));
        if let Some((cache, shape)) = &shape {
            if let Some((topology, emb)) = cache.embedding_get(*shape) {
                return Some(EmbeddingStats::from_chains(
                    topology,
                    emb.chains(),
                    start.elapsed().as_micros() as u64,
                ));
            }
        }
        let problem = qsmt_qpu::QpuSimulator::problem_graph(model);
        // Smallest C(m, m, 4) with at least n qubits, then grow the grid
        // until the router finds a placement (denser problems need slack).
        let mut m = 1usize;
        while 8 * m * m < n {
            m += 1;
        }
        for grid in m..m + 4 {
            let topo = qsmt_qpu::Topology::chimera(grid, grid, 4);
            if let Ok(emb) = qsmt_qpu::embed(&problem, topo.graph(), self.seed, 2) {
                let stats = EmbeddingStats::from_chains(
                    topo.name(),
                    emb.chains(),
                    start.elapsed().as_micros() as u64,
                );
                if let Some((cache, shape)) = shape {
                    cache.embedding_insert(shape, topo.name(), emb);
                }
                return Some(stats);
            }
        }
        None
    }
}

impl std::fmt::Debug for StringSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StringSolver")
            .field("sampler", &self.sampler.name())
            .field("strength", &self.strength)
            .field("bias", &self.bias)
            .finish()
    }
}

/// The result of one end-to-end solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The encoded problem (QUBO + decode scheme).
    pub problem: EncodedProblem,
    /// The full aggregated sample set from the sampler.
    pub samples: SampleSet,
    /// The reported answer (lowest-energy valid sample, or lowest-energy
    /// sample when nothing validated).
    pub solution: Solution,
    /// QUBO energy of the reported answer.
    pub energy: f64,
    /// Whether the reported answer passed semantic validation.
    pub valid: bool,
}

/// One stage of the Figure 1 pipeline trace.
#[derive(Debug, Clone)]
pub struct TraceStage {
    /// Stage name (matches a box in the paper's Figure 1).
    pub label: String,
    /// Stage payload.
    pub detail: String,
}

/// A full pipeline trace: input → binary variables → QUBO matrix →
/// annealer → decoded output.
#[derive(Debug, Clone)]
pub struct SolveTrace {
    /// The ordered stages.
    pub stages: Vec<TraceStage>,
}

impl std::fmt::Display for SolveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "[{}] {}", i + 1, stage.label)?;
            for line in stage.detail.lines() {
                writeln!(f, "      {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsmt_anneal::ExactSolver;

    fn solver() -> StringSolver {
        StringSolver::with_defaults().with_seed(42)
    }

    #[test]
    fn solves_equality() {
        let out = solver()
            .solve(&Constraint::Equality {
                target: "hi".into(),
            })
            .unwrap();
        assert_eq!(out.solution.as_text(), Some("hi"));
        assert!(out.valid);
    }

    #[test]
    fn solves_reverse_and_replace() {
        let out = solver()
            .solve(&Constraint::Reverse {
                input: "abc".into(),
            })
            .unwrap();
        assert_eq!(out.solution.as_text(), Some("cba"));
        let out = solver()
            .solve(&Constraint::ReplaceAll {
                input: "aba".into(),
                from: 'a',
                to: 'z',
            })
            .unwrap();
        assert_eq!(out.solution.as_text(), Some("zbz"));
    }

    #[test]
    fn solves_palindrome_with_validation() {
        let out = solver().solve(&Constraint::Palindrome { len: 4 }).unwrap();
        assert!(out.valid, "post-selected palindrome must validate");
        let t = out.solution.as_text().unwrap();
        assert_eq!(t.chars().rev().collect::<String>(), t);
    }

    #[test]
    fn solves_regex_with_post_selection() {
        let out = solver()
            .solve(&Constraint::Regex {
                pattern: "a[bc]+".into(),
                len: 4,
            })
            .unwrap();
        assert!(out.valid, "post-selection must find an NFA-valid sample");
        let t = out.solution.as_text().unwrap();
        assert!(t.starts_with('a'));
        assert!(t[1..].chars().all(|c| c == 'b' || c == 'c'), "{t:?}");
    }

    #[test]
    fn solves_includes_index() {
        let out = solver()
            .solve(&Constraint::Includes {
                haystack: "hello world".into(),
                needle: "world".into(),
            })
            .unwrap();
        assert_eq!(out.solution.as_index(), Some(6));
        assert!(out.valid);
    }

    #[test]
    fn custom_sampler_is_used() {
        let s = StringSolver::new(Arc::new(ExactSolver::new()));
        assert_eq!(s.sampler_name(), "exact");
        let out = s
            .solve(&Constraint::Equality {
                target: "ab".into(),
            })
            .unwrap();
        assert_eq!(out.solution.as_text(), Some("ab"));
        assert!(out.valid);
    }

    #[test]
    fn trace_contains_all_figure1_stages() {
        let (_, trace) = solver()
            .solve_traced(&Constraint::Equality {
                target: "ok".into(),
            })
            .unwrap();
        assert_eq!(trace.stages.len(), 5);
        let labels: Vec<&str> = trace.stages.iter().map(|s| s.label.as_str()).collect();
        assert!(labels[0].contains("operation"));
        assert!(labels[2].contains("QUBO"));
        assert!(labels[4].contains("decoded"));
        let rendered = trace.to_string();
        assert!(rendered.contains("[1]"));
        assert!(rendered.contains("[5]"));
    }

    #[test]
    fn with_reads_controls_sampling_depth() {
        let out = StringSolver::with_defaults()
            .with_seed(2)
            .with_reads(8)
            .solve(&Constraint::Equality {
                target: "ab".into(),
            })
            .unwrap();
        assert_eq!(out.samples.total_reads(), 8);
        assert!(out.valid);
    }

    #[test]
    fn solve_many_returns_distinct_valid_witnesses() {
        let sols = solver()
            .solve_many(&Constraint::Palindrome { len: 3 }, 5)
            .unwrap();
        assert!(sols.len() > 1, "palindromes are degenerate: expect several");
        let mut seen = std::collections::HashSet::new();
        for s in &sols {
            let t = s.as_text().expect("text").to_string();
            assert_eq!(t.chars().rev().collect::<String>(), t);
            assert!(seen.insert(t), "witnesses must be distinct");
        }
    }

    #[test]
    fn solve_many_respects_limit_and_unique_answers() {
        let sols = solver()
            .solve_many(
                &Constraint::Equality {
                    target: "ab".into(),
                },
                5,
            )
            .unwrap();
        // Equality has exactly one satisfying string.
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].as_text(), Some("ab"));
        let limited = solver()
            .solve_many(&Constraint::Palindrome { len: 3 }, 2)
            .unwrap();
        assert!(limited.len() <= 2);
    }

    #[test]
    fn reported_solve_matches_plain_solve() {
        let c = Constraint::Reverse {
            input: "abc".into(),
        };
        let plain = solver().solve(&c).unwrap();
        let (outcome, report) = solver().solve_reported(&c).unwrap();
        assert_eq!(outcome.solution, plain.solution);
        assert_eq!(
            outcome.samples, plain.samples,
            "telemetry must not change sampling"
        );
        assert_eq!(report.solution, "\"cba\"");
        assert!(report.valid);
    }

    #[test]
    fn report_carries_dynamics_from_probed_sampler() {
        let (_, report) = solver()
            .solve_reported(&Constraint::Reverse { input: "ab".into() })
            .unwrap();
        let d = report.dynamics.as_ref().expect("SA exposes dynamics");
        assert!(!d.energy_trace.is_empty());
        assert!(!d.beta_acceptance.is_empty());
        assert!(d.proposal_latency_ns.is_some());
        assert!(d.sweep_improvement.is_some());
        assert!(d.last_improvement_fraction >= 0.0 && d.last_improvement_fraction <= 1.0);
        // TTT curve covers the gap fractions in order and ends at the
        // sweep where the final best energy was reached.
        assert!(!d.time_to_target.is_empty());
        assert!(d
            .time_to_target
            .windows(2)
            .all(|w| w[0].gap_fraction < w[1].gap_fraction && w[0].sweep <= w[1].sweep));
        // The verdict made it into the event stream too.
        assert!(report.spans.iter().any(|s| s.name == "dynamics"));
    }

    #[test]
    fn report_stages_are_ordered_and_timed() {
        let (_, report) = solver()
            .solve_reported(&Constraint::Equality {
                target: "hi".into(),
            })
            .unwrap();
        let labels: Vec<&str> = report.stages.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["compile", "lint", "presolve", "embed", "sample", "select"]
        );
        // Stage starts are monotone non-decreasing and fit in the total.
        for pair in report.stages.windows(2) {
            assert!(pair[0].start_us <= pair[1].start_us);
            assert!(pair[0].start_us + pair[0].dur_us <= pair[1].start_us);
        }
        let last = report.stages.last().unwrap();
        assert!(last.start_us + last.dur_us <= report.total_us);
        assert!(!report.spans.is_empty());
    }

    #[test]
    fn report_carries_qubo_sampler_and_embedding_stats() {
        let (out, report) = solver()
            .solve_reported(&Constraint::Palindrome { len: 4 })
            .unwrap();
        assert_eq!(report.qubo.num_vars, out.problem.num_vars());
        assert!(report.qubo.max_abs_coefficient > 0.0);
        let s = &report.sampling;
        assert_eq!(s.sampler, "simulated-annealing");
        assert_eq!(s.reads, 64);
        assert!(s.best_energy <= s.mean_energy);
        assert!(s.mean_energy <= s.max_energy);
        assert!(s.acceptance_rate.is_some(), "SA exposes move counters");
        assert!(s.proposals_per_sec.is_some(), "SA times its own run");
        assert!(s.flips_per_sec.is_some());
        assert!(s.success_fraction > 0.0);
        assert!(s.tts99_us.is_some());
        let e = report.embedding.as_ref().expect("small model embeds");
        assert_eq!(e.num_logical, out.problem.num_vars());
        assert!(e.num_physical_qubits >= e.num_logical);
        assert!(e.max_chain_length >= 1);
        let total: u64 = e.chain_length_histogram.iter().sum();
        assert_eq!(total as usize, e.num_logical);
        assert_eq!(report.select.valid_rank.is_some(), out.valid);
        assert!(report.select.decoded_states > 0);
    }

    #[test]
    fn reported_solve_propagates_encode_errors() {
        assert!(solver()
            .solve_reported(&Constraint::Equality {
                target: "héllo".into()
            })
            .is_err());
    }

    #[test]
    fn lint_is_clean_on_sound_formulations() {
        let report = solver()
            .lint(&Constraint::Reverse {
                input: "abc".into(),
            })
            .unwrap();
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn deny_mode_passes_sound_encodings_and_reports_lint_stage() {
        let s = solver().with_deny_lint_errors(true);
        let out = s
            .solve(&Constraint::Equality {
                target: "hi".into(),
            })
            .unwrap();
        assert!(out.valid);
        let (_, report) = s
            .solve_reported(&Constraint::Equality {
                target: "hi".into(),
            })
            .unwrap();
        let lint = report.lint.as_ref().expect("reported solve always lints");
        assert_eq!(lint.errors, 0);
    }

    #[test]
    fn deny_gate_rejects_error_reports() {
        // Build an unsound model directly (under-weighted exactly-one
        // clique overwhelmed by reward terms) and check the gate logic.
        let mut m = QuboModel::new(3);
        qsmt_qubo::PenaltyBuilder::new(&mut m)
            .exactly_one(&[0, 1, 2], 1.0)
            .bit_target(0, true, 5.0)
            .bit_target(1, true, 5.0);
        let report = qsmt_lint::lint_qubo(&m, &LintConfig::default());
        assert!(report.has_errors());
        let err = StringSolver::reject_on_errors(&report).unwrap_err();
        match err {
            ConstraintError::LintRejected { summary } => {
                assert!(summary.contains("penalty-gap"), "{summary}");
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
    }

    #[test]
    fn encode_error_propagates() {
        assert!(solver()
            .solve(&Constraint::Equality {
                target: "héllo".into()
            })
            .is_err());
    }

    #[test]
    fn stop_flag_survives_builder_reordering_and_cancels_promptly() {
        use std::time::{Duration, Instant};
        // `with_stop` before `with_reads`/`with_seed`: every rebuild of
        // the default sampler must re-attach the flag.
        let stop = StopFlag::new();
        let s = StringSolver::with_defaults()
            .with_stop(stop.clone())
            .with_seed(9)
            .with_reads(4096);
        stop.stop();
        let started = Instant::now();
        // A tripped flag cancels before the first sweep: a read budget
        // this size would otherwise take far longer than the assertion
        // allows, and the call still returns a well-formed outcome.
        let out = s
            .solve(&Constraint::Equality {
                target: "hello".into(),
            })
            .unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "tripped stop flag did not cut the solve short: {:?}",
            started.elapsed()
        );
        let _ = out.valid;
    }

    #[test]
    fn untripped_stop_flag_keeps_solves_bit_identical() {
        let plain = solver().solve(&Constraint::Equality {
            target: "abc".into(),
        });
        let flagged = solver()
            .with_stop(StopFlag::new())
            .solve(&Constraint::Equality {
                target: "abc".into(),
            });
        let (plain, flagged) = (plain.unwrap(), flagged.unwrap());
        assert_eq!(plain.solution, flagged.solution);
        assert_eq!(plain.energy, flagged.energy);
    }

    /// Delegates to a real annealer but counts invocations, so a test
    /// can prove an exact cache hit never reaches the sampler and a warm
    /// start goes through the configured sampler — not a silently
    /// substituted built-in. The name is deliberately custom: warm-start
    /// eligibility is a trait capability, not a name match.
    struct CountingSampler {
        inner: SimulatedAnnealer,
        calls: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl CountingSampler {
        fn with_defaults() -> Self {
            Self {
                inner: SimulatedAnnealer::new().with_num_reads(64).with_sweeps(384),
                calls: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            }
        }
    }

    impl Sampler for CountingSampler {
        fn sample(&self, model: &QuboModel) -> SampleSet {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.sample(model)
        }

        fn name(&self) -> &'static str {
            "counting-sa"
        }

        fn supports_initial_state(&self) -> bool {
            true
        }

        fn warm_started(&self, state: Vec<u8>) -> Option<Arc<dyn Sampler>> {
            // Keep the instrumentation: the warm variant shares this
            // sampler's call counter.
            Some(Arc::new(CountingSampler {
                inner: self.inner.clone().reverse_anneal_from(state),
                calls: Arc::clone(&self.calls),
            }))
        }
    }

    #[test]
    fn exact_cache_hit_replays_without_invoking_the_sampler() {
        let counting = Arc::new(CountingSampler::with_defaults());
        let calls = Arc::clone(&counting.calls);
        let cache = Arc::new(SolveCache::new(16));
        let s = StringSolver::new(counting).with_cache(cache);
        let c = Constraint::Reverse { input: "ab".into() };
        let cold = s.solve(&c).unwrap();
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        let hit = s.solve(&c).unwrap();
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exact hit must not sample again"
        );
        // The cached sample set replays through deterministic
        // post-selection, so the hit is bit-identical to the cold solve.
        assert_eq!(hit.solution, cold.solution);
        assert_eq!(hit.energy, cold.energy);
        assert_eq!(hit.samples, cold.samples);
    }

    #[test]
    fn warm_starts_go_through_the_configured_sampler() {
        let counting = Arc::new(CountingSampler::with_defaults());
        let calls = Arc::clone(&counting.calls);
        let cache = Arc::new(SolveCache::new(16));
        let s = StringSolver::new(counting).with_cache(cache);
        s.solve(&Constraint::Reverse { input: "ab".into() })
            .unwrap();
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        // Same shape, different coefficients: a warm start. The counter
        // advancing proves the custom sampler (via its warm variant) ran
        // the refinement — not a silently substituted built-in annealer.
        let warm = s
            .solve(&Constraint::Reverse { input: "cd".into() })
            .unwrap();
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "warm start must sample through the configured sampler"
        );
        assert!(warm.valid);
        assert_eq!(warm.solution.as_text(), Some("dc"));
    }

    #[test]
    fn larger_read_budgets_are_not_answered_from_cache() {
        let cache = Arc::new(SolveCache::new(16));
        let c = Constraint::Reverse { input: "ab".into() };
        // Populate the cache with a small-budget solve …
        StringSolver::with_defaults()
            .with_seed(11)
            .with_reads(8)
            .with_cache(Arc::clone(&cache))
            .solve(&c)
            .unwrap();
        // … then ask for more reads: the cached 8-read set must not be
        // replayed; the shape entry warm-starts a solve at full budget.
        let out = StringSolver::with_defaults()
            .with_seed(11)
            .with_reads(64)
            .with_cache(cache)
            .solve(&c)
            .unwrap();
        assert_eq!(
            out.samples.total_reads(),
            64,
            "requested read budget must be honored, not the cached one"
        );
        assert!(out.valid);
    }

    #[test]
    fn cancelled_solves_are_never_cached() {
        let cache = Arc::new(SolveCache::new(16));
        let stop = StopFlag::new();
        let s = StringSolver::with_defaults()
            .with_cache(cache.clone())
            .with_stop(stop.clone());
        stop.stop();
        // A tripped flag truncates the anneal; whatever partial sample
        // set comes back must not poison the cache.
        let _ = s
            .solve(&Constraint::Equality {
                target: "hi".into(),
            })
            .unwrap();
        assert!(cache.is_empty(), "cancelled solve leaked into the cache");
    }

    #[test]
    fn reported_cache_outcomes_cover_miss_exact_hit_and_warm_start() {
        let cache = Arc::new(SolveCache::new(16));
        let s = StringSolver::with_defaults()
            .with_seed(11)
            .with_cache(cache);

        // Cold solve: a miss that runs the full 384-sweep schedule.
        let c = Constraint::Reverse { input: "ab".into() };
        let (cold_out, cold) = s.solve_reported(&c).unwrap();
        let stats = cold.cache.as_ref().expect("cache attached");
        assert_eq!(stats.outcome, "miss");
        assert_eq!(stats.warm_sweeps, None);
        assert_eq!(stats.source_reads, None);
        let cold_sweeps = cold.sampling.sweeps.expect("SA reports sweeps");
        assert_eq!(cold_sweeps, 384);

        // Exact repeat: replayed from cache, sampler labelled as such.
        let (hit_out, hit) = s.solve_reported(&c).unwrap();
        let stats = hit.cache.as_ref().expect("cache attached");
        assert_eq!(stats.outcome, "exact-hit");
        assert_eq!(hit.sampling.sampler, "cache");
        // The report discloses which solve populated the entry.
        assert_eq!(stats.source_reads, Some(64));
        assert_eq!(stats.source_seed, Some(11));
        assert_eq!(hit_out.solution, cold_out.solution);
        assert_eq!(hit_out.samples, cold_out.samples);

        // Same shape, different coefficients: the cached ground state
        // seeds a short reverse anneal instead of a cold run.
        let near = Constraint::Reverse { input: "cd".into() };
        let (warm_out, warm) = s.solve_reported(&near).unwrap();
        let stats = warm.cache.as_ref().expect("cache attached");
        assert_eq!(stats.outcome, "warm-start");
        let warm_sweeps = stats.warm_sweeps.expect("warm starts report sweeps");
        assert!(
            warm_sweeps < cold_sweeps,
            "warm start ({warm_sweeps} sweeps) must beat the cold schedule ({cold_sweeps})"
        );
        assert!(warm_out.valid, "warm-started solve still post-selects");
        assert_eq!(warm_out.solution.as_text(), Some("dc"));
    }

    #[test]
    fn invalid_outcome_is_flagged_not_hidden() {
        // Unsatisfiable semantics: includes over a haystack without the
        // needle — decoded index will not match find() == None unless the
        // annealer lands on the all-zero state; either way valid reflects
        // the truth.
        let out = solver()
            .solve(&Constraint::Includes {
                haystack: "xyz".into(),
                needle: "ab".into(),
            })
            .unwrap();
        if out.valid {
            assert_eq!(out.solution.as_index(), None);
        }
    }
}
