//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind `parking_lot`'s API shape: `lock()` /
//! `read()` / `write()` return guards directly instead of `Result`s.
//! Poisoning is transparently cleared (matching `parking_lot`, which has
//! no poisoning at all).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
