//! Cross-crate consistency: the same encoded constraints solved through
//! every sampler implementation agree on ground energies and satisfy the
//! constraint semantics.

use qsmt::{
    Constraint, ExactSolver, ParallelTempering, PopulationAnnealer, Sampler, SimulatedAnnealer,
    SimulatedQuantumAnnealer, SteepestDescent, StringSolver, TabuSearch,
};
use std::sync::Arc;

/// Small constraints (≤ 26 variables) so the exact solver can arbitrate.
fn small_constraints() -> Vec<Constraint> {
    vec![
        Constraint::Equality {
            target: "ab".into(),
        },
        Constraint::Reverse {
            input: "abc".into(),
        },
        Constraint::ReplaceAll {
            input: "aba".into(),
            from: 'a',
            to: 'z',
        },
        Constraint::Palindrome { len: 3 },
        Constraint::Regex {
            pattern: "a[bc]".into(),
            len: 2,
        },
        Constraint::Includes {
            haystack: "abcabc".into(),
            needle: "abc".into(),
        },
    ]
}

#[test]
fn all_samplers_reach_exact_ground_energy() {
    let exact = ExactSolver::new();
    let samplers: Vec<Box<dyn Sampler>> = vec![
        Box::new(SimulatedAnnealer::new().with_seed(3).with_num_reads(32)),
        Box::new(ParallelTempering::new().with_seed(3).with_rounds(64)),
        Box::new(TabuSearch::new().with_seed(3)),
        Box::new(SteepestDescent::new().with_seed(3).with_num_reads(64)),
        Box::new(PopulationAnnealer::new().with_seed(3).with_population(48)),
        Box::new(
            SimulatedQuantumAnnealer::new()
                .with_seed(3)
                .with_num_reads(16)
                .with_sweeps(256),
        ),
    ];
    for c in small_constraints() {
        let p = c.encode().expect("encodes");
        let (ground, _) = exact.ground_states(&p.qubo);
        for s in &samplers {
            let best = s.sample(&p.qubo).lowest_energy().expect("reads");
            assert!(
                (best - ground).abs() < 1e-9,
                "{} missed ground on {}: {best} vs {ground}",
                s.name(),
                c.describe()
            );
        }
    }
}

#[test]
fn solver_facade_works_with_every_sampler() {
    let samplers: Vec<Arc<dyn Sampler>> = vec![
        Arc::new(SimulatedAnnealer::new().with_seed(9).with_num_reads(48)),
        Arc::new(ParallelTempering::new().with_seed(9).with_rounds(64)),
        Arc::new(TabuSearch::new().with_seed(9).with_num_reads(16)),
        Arc::new(ExactSolver::new().with_keep(32)),
    ];
    for sampler in samplers {
        let name = sampler.name();
        let solver = StringSolver::new(sampler);
        let out = solver
            .solve(&Constraint::Reverse { input: "ab".into() })
            .expect("encodes");
        assert_eq!(
            out.solution.as_text(),
            Some("ba"),
            "sampler {name} disagrees"
        );
        assert!(out.valid);
    }
}

#[test]
fn validation_distinguishes_relaxed_ground_states() {
    // a[bd] admits out-of-class ground states (paper relaxation); the
    // exact solver surfaces them all and post-selection must still land
    // on a valid one.
    let c = Constraint::Regex {
        pattern: "a[bd]".into(),
        len: 2,
    };
    let solver = StringSolver::new(Arc::new(ExactSolver::new().with_keep(64)));
    let out = solver.solve(&c).expect("encodes");
    assert!(out.valid);
    let t = out.solution.as_text().expect("text");
    assert!(t == "ab" || t == "ad", "got {t:?}");
}

#[test]
fn deterministic_cross_run() {
    let a = StringSolver::with_defaults()
        .with_seed(5)
        .solve(&Constraint::Palindrome { len: 4 })
        .expect("encodes");
    let b = StringSolver::with_defaults()
        .with_seed(5)
        .solve(&Constraint::Palindrome { len: 4 })
        .expect("encodes");
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.energy, b.energy);
}
