//! # qsmt-symex — symbolic execution on the quantum string solver
//!
//! The paper's conclusion proposes "using these formulas in applications
//! such as symbolic execution and program testing" as future work. This
//! crate implements that application: a small symbolic-execution engine
//! for string-manipulating programs whose path conditions are discharged
//! by the QUBO solver.
//!
//! A program operates on one symbolic input string of known length
//! ([`Expr::Input`]) through reversible/affine string transformations
//! ([`Expr`]), and branches on string predicates ([`Cond`]). For every
//! branch (a conjunction of possibly-negated conditions), the engine:
//!
//! 1. **pulls back** each positive condition through the expression tree
//!    to a [`qsmt_core::Constraint`] on the raw input (reversal flips
//!    affix conditions and reverses regexes; appends/prepends strip
//!    literal parts and shift indices);
//! 2. conjoins the pulled-back constraints ([`qsmt_core::Constraint::All`])
//!    and asks the solver for *many* candidate inputs;
//! 3. **concretely executes** the program on each candidate and keeps
//!    those satisfying the full path condition — including the negated
//!    conditions, which QUBO cannot encode directly.
//!
//! Generation is therefore *sound but deliberately incomplete*: pullback
//! uses sufficient conditions where exact inversion is not expressible
//! (e.g. `Contains` across an append boundary), and the concrete replay
//! guarantees that every reported test input really drives its branch.
//!
//! ```
//! use qsmt_core::StringSolver;
//! use qsmt_symex::{Cond, Expr, PathExplorer, Program};
//!
//! // if reverse(input).starts_with("ba") { hot } else { cold }
//! let program = Program::new("demo", 4)
//!     .branch("hot", vec![(Cond::StartsWith(Expr::input().rev(), "ba".into()), true)])
//!     .branch("cold", vec![(Cond::StartsWith(Expr::input().rev(), "ba".into()), false)]);
//! let solver = StringSolver::with_defaults().with_seed(5);
//! let report = PathExplorer::new(&solver).explore(&program).unwrap();
//! assert!(report.all_covered());
//! ```

#![warn(missing_docs)]

mod engine;
mod expr;
mod pullback;

pub use engine::{BranchResult, BranchStatus, ExploreReport, PathExplorer, SymexError};
pub use expr::{Cond, Expr, Program};
pub use pullback::{pull_back, Pulled};
