//! Regenerates the paper's **Figure 1** ("Overview of our approach") as a
//! live end-to-end trace: operation + args → binary variables → objective
//! and penalty functions in a QUBO matrix → (simulated) annealer →
//! decoded string.
//!
//! Run with: `cargo run --release -p qsmt-bench --bin figure1`

use qsmt_core::{Constraint, StringSolver};

fn main() {
    let solver = StringSolver::with_defaults().with_seed(7);
    println!("=== Figure 1: Overview of our approach (live trace) ===\n");

    for constraint in [
        Constraint::Equality {
            target: "abc".into(),
        },
        Constraint::Palindrome { len: 4 },
        Constraint::Regex {
            pattern: "a[bc]+".into(),
            len: 4,
        },
    ] {
        let (outcome, trace) = solver
            .solve_traced(&constraint)
            .expect("constraint encodes");
        println!("{trace}");
        println!(
            "result: {} (valid: {})\n{}",
            outcome.solution,
            outcome.valid,
            "=".repeat(72)
        );
    }
}
