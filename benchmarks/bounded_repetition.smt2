; Bounded repetition via re.++ of re.opt (SMT-LIB has no {m,n} operator;
; this encodes a{2,3}b at length 4)
(set-logic QF_S)
(declare-const s String)
(assert (str.in_re s (re.++ (str.to_re "a") (str.to_re "a")
                            (re.opt (str.to_re "a")) (str.to_re "b"))))
(assert (= (str.len s) 4))
(check-sat)
(get-model)
