//! Integration tests for the observability surface: `qsmt solve --report`
//! must emit a JSON run report whose schema downstream tooling can rely
//! on. The report is parsed back with `qsmt::telemetry::parse` and
//! checked field by field against docs/OBSERVABILITY.md.

use qsmt::telemetry::{parse, Json};
use std::process::Command;

fn qsmt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsmt"))
}

fn corpus(name: &str) -> String {
    format!("{}/benchmarks/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn report_for(bench: &str, extra: &[&str]) -> Json {
    let dir = std::env::temp_dir().join(format!("qsmt-report-{bench}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("report.json");
    let path_str = path.to_str().expect("utf8 path");
    let mut args = vec![
        "solve",
        &*corpus(bench).leak(),
        "--seed",
        "7",
        "--report",
        path_str,
    ];
    args.extend_from_slice(extra);
    let out = qsmt().args(&args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("report file written");
    std::fs::remove_dir_all(&dir).ok();
    parse(&text).expect("report is valid JSON")
}

#[test]
fn table1_palindrome_report_has_documented_schema() {
    let doc = report_for("table1_row2_palindrome.smt2", &[]);

    // Top level.
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(9));
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("sat"));
    // No trace entered on the plain CLI path (schema v8): the id is
    // null but the per-stage span_us rollup is always populated.
    assert_eq!(doc.get("trace_id"), Some(&Json::Null));
    assert!(
        matches!(doc.get("span_us"), Some(Json::Obj(map)) if map.contains_key("sample")),
        "span_us rollup missing the sample stage"
    );
    // The one-shot CLI path runs cache-less: a sat run is always served
    // by the solver, and the per-solve cache section is present-but-null.
    assert_eq!(
        doc.get("served_from").and_then(Json::as_str),
        Some("solver")
    );
    // Abstract-interpretation section (schema v6): the palindrome script
    // is not statically refutable, so the verdict is "unknown" — but the
    // stage ran and its stats are populated.
    let absint = doc.get("absint").expect("absint section");
    assert_ne!(absint, &Json::Null, "absint runs by default");
    assert_eq!(
        absint.get("verdict").and_then(Json::as_str),
        Some("unknown")
    );
    assert!(absint.get("iterations").and_then(Json::as_u64).unwrap() >= 1);
    assert!(absint.get("features").is_some(), "routing features present");
    assert_eq!(
        doc.get("sampler").and_then(Json::as_str),
        Some("simulated-annealing")
    );
    assert!(doc.get("elapsed_us").and_then(Json::as_u64).unwrap() > 0);
    assert!(doc
        .get("source")
        .and_then(Json::as_str)
        .unwrap()
        .ends_with("table1_row2_palindrome.smt2"));

    // One goal, one solve.
    let goals = doc.get("goals").and_then(Json::as_arr).expect("goals");
    assert_eq!(goals.len(), 1);
    let goal = &goals[0];
    assert_eq!(goal.get("name").and_then(Json::as_str), Some("p"));
    assert_eq!(goal.get("valid").and_then(Json::as_bool), Some(true));
    let solves = goal.get("solves").and_then(Json::as_arr).expect("solves");
    assert_eq!(solves.len(), 1);
    let solve = &solves[0];

    // Stage set and monotonic, in-bounds timings.
    let stages = solve.get("stages").and_then(Json::as_arr).expect("stages");
    let labels: Vec<&str> = stages
        .iter()
        .map(|s| s.get("label").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(
        labels,
        vec!["compile", "lint", "presolve", "embed", "sample", "select"]
    );
    let total_us = solve.get("total_us").and_then(Json::as_u64).unwrap();
    let mut prev_end = 0u64;
    for stage in stages {
        let start = stage.get("start_us").and_then(Json::as_u64).unwrap();
        let dur = stage.get("dur_us").and_then(Json::as_u64).unwrap();
        assert!(start >= prev_end, "stages must not overlap");
        prev_end = start + dur;
    }
    assert!(prev_end <= total_us, "stages fit inside the solve");

    // QUBO shape: the §4.10 palindrome over 6 chars uses 7·6 = 42 vars.
    let qubo = solve.get("qubo").expect("qubo");
    assert_eq!(qubo.get("num_vars").and_then(Json::as_u64), Some(42));
    assert!(qubo.get("num_interactions").and_then(Json::as_u64).unwrap() > 0);
    assert!(qubo.get("density").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(
        qubo.get("max_abs_coefficient")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );

    // Lint stats (schema v2): the palindrome formulation is clean of
    // errors and the stage timing is recorded.
    let lint = solve.get("lint").expect("lint");
    assert_ne!(lint, &Json::Null, "reported solves always lint");
    assert_eq!(lint.get("errors").and_then(Json::as_u64), Some(0));
    let codes = lint.get("codes").and_then(Json::as_arr).expect("codes");
    assert!(codes.iter().all(|c| c.as_str().is_some()));

    // Embedding chain statistics are present for this small model.
    let emb = solve.get("embedding").expect("embedding");
    assert_ne!(emb, &Json::Null, "small models must embed");
    assert_eq!(emb.get("num_logical").and_then(Json::as_u64), Some(42));
    assert!(
        emb.get("num_physical_qubits")
            .and_then(Json::as_u64)
            .unwrap()
            >= 42
    );
    assert!(emb.get("max_chain_length").and_then(Json::as_u64).unwrap() >= 1);
    let hist = emb
        .get("chain_length_histogram")
        .and_then(Json::as_arr)
        .expect("histogram");
    let chains: u64 = hist.iter().map(|h| h.as_u64().unwrap()).sum();
    assert_eq!(chains, 42, "every logical var has exactly one chain");
    assert!(emb
        .get("topology")
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("chimera"));

    // Sampler statistics: populated energies and SA move counters.
    let sampling = solve.get("sampling").expect("sampling");
    assert_eq!(sampling.get("reads").and_then(Json::as_u64), Some(64));
    assert_eq!(sampling.get("sweeps").and_then(Json::as_u64), Some(384));
    // Schema v7: SA bit-slices its 64 reads into one word-wide batch.
    assert_eq!(sampling.get("replicas").and_then(Json::as_u64), Some(64));
    let best = sampling.get("best_energy").and_then(Json::as_f64).unwrap();
    let mean = sampling.get("mean_energy").and_then(Json::as_f64).unwrap();
    let max = sampling.get("max_energy").and_then(Json::as_f64).unwrap();
    assert!(best.is_finite() && mean.is_finite() && max.is_finite());
    assert!(best <= mean && mean <= max);
    assert!(
        sampling
            .get("std_dev_energy")
            .and_then(Json::as_f64)
            .unwrap()
            >= 0.0
    );
    let rate = sampling
        .get("acceptance_rate")
        .and_then(Json::as_f64)
        .expect("SA reports acceptance");
    assert!(rate > 0.0 && rate < 1.0);
    assert!(
        sampling
            .get("success_fraction")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    assert!(sampling.get("tts99_us").and_then(Json::as_u64).is_some());

    // Throughput counters (schema v3): SA times its own run, so both
    // rates are present and positive.
    let pps = sampling
        .get("proposals_per_sec")
        .and_then(Json::as_f64)
        .expect("SA reports proposal throughput");
    assert!(pps > 0.0 && pps.is_finite());
    let fps = sampling
        .get("flips_per_sec")
        .and_then(Json::as_f64)
        .expect("SA reports flip throughput");
    assert!(fps > 0.0 && fps <= pps, "accepted flips are a subset");

    // Dynamics section (schema v4): trajectory probes ran under the
    // default SA sampler, so the section is populated.
    let dynamics = solve.get("dynamics").expect("dynamics");
    assert_ne!(dynamics, &Json::Null, "SA emits trajectory dynamics");
    let trace = dynamics
        .get("energy_trace")
        .and_then(Json::as_arr)
        .expect("energy trace");
    assert!(!trace.is_empty());
    let energies: Vec<f64> = trace
        .iter()
        .map(|p| p.get("best_energy").and_then(Json::as_f64).unwrap())
        .collect();
    assert!(
        energies.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "best-so-far trace is non-increasing"
    );
    let betas = dynamics
        .get("beta_acceptance")
        .and_then(Json::as_arr)
        .expect("per-beta acceptance");
    assert!(!betas.is_empty());
    for entry in betas {
        let proposals = entry.get("proposals").and_then(Json::as_u64).unwrap();
        let accepted = entry.get("accepted").and_then(Json::as_u64).unwrap();
        assert!(accepted <= proposals);
    }
    let ttt = dynamics
        .get("time_to_target")
        .and_then(Json::as_arr)
        .expect("time-to-target curve");
    assert!(!ttt.is_empty());
    let verdict = dynamics
        .get("stall_verdict")
        .and_then(Json::as_str)
        .expect("stall verdict");
    assert!(["improving", "converged", "stalled"].contains(&verdict));
    assert!(dynamics
        .get("proposal_latency_ns")
        .and_then(|h| h.get("p50"))
        .and_then(Json::as_f64)
        .is_some());

    // Cache section (schema v5): present as a key, null when the solver
    // had no cache attached (the CLI path).
    assert_eq!(solve.get("cache"), Some(&Json::Null));

    // Select stage found a valid answer.
    let select = solve.get("select").expect("select");
    assert!(select.get("valid_rank").and_then(Json::as_u64).is_some());

    // The reported energy matches the best sampled energy (post-selection
    // picked a valid sample; for the palindrome that is the ground state).
    assert_eq!(solve.get("valid").and_then(Json::as_bool), Some(true));

    // Span log is present and covers the sample stage.
    let spans = solve.get("spans").and_then(Json::as_arr).expect("spans");
    assert!(spans
        .iter()
        .any(|s| s.get("name").and_then(Json::as_str) == Some("sample")));
}

#[test]
fn pipeline_report_has_one_solve_per_stage() {
    let doc = report_for("table1_row1_reverse_replace.smt2", &[]);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("sat"));
    let goals = doc.get("goals").and_then(Json::as_arr).unwrap();
    assert_eq!(goals.len(), 1);
    assert_eq!(
        goals[0].get("kind").and_then(Json::as_str),
        Some("pipeline")
    );
    let solves = goals[0].get("solves").and_then(Json::as_arr).unwrap();
    assert_eq!(solves.len(), 2, "reverse then replace_all");
    // Goal total aggregates the per-step solve totals.
    let goal_total = goals[0].get("total_us").and_then(Json::as_u64).unwrap();
    let sum: u64 = solves
        .iter()
        .map(|s| s.get("total_us").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(goal_total, sum);
}

#[test]
fn stats_flag_prints_stage_timings_without_breaking_model_output() {
    let out = qsmt()
        .args([
            "solve",
            &corpus("table1_row2_palindrome.smt2"),
            "--seed",
            "7",
            "--stats",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("sat"), "model output comes first");
    for needle in [
        "compile",
        "sample",
        "select",
        "sampling: 64 reads",
        "accepted",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in: {stdout}");
    }
    // Stats lines are SMT-LIB comments so the output stays parseable.
    assert!(stdout
        .lines()
        .filter(|l| l.contains("ms"))
        .all(|l| l.starts_with(';')));
}

#[test]
fn trace_flag_prints_span_log() {
    let out = qsmt()
        .args([
            "solve",
            &corpus("table1_row1_reverse_replace.smt2"),
            "--seed",
            "7",
            "--trace",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("; trace for goal"));
    assert!(stdout.contains("compile"));
    assert!(stdout.contains("ms"));
}

#[test]
fn unsat_report_has_status_and_no_goals() {
    let doc = report_for("unsat_regex_length.smt2", &[]);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("unsat"));
    let goals = doc.get("goals").and_then(Json::as_arr).unwrap();
    assert!(
        goals.is_empty(),
        "statically-refuted scripts never reach the sampler"
    );
    // Schema v6: the refutation is attributed to the abstract
    // interpreter, with a non-empty checked certificate.
    assert_eq!(
        doc.get("served_from").and_then(Json::as_str),
        Some("absint")
    );
    let absint = doc.get("absint").expect("absint section");
    assert_eq!(absint.get("verdict").and_then(Json::as_str), Some("unsat"));
    assert!(
        absint
            .get("certificate_steps")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
}

#[test]
fn no_absint_flag_disables_the_stage_and_keeps_schema_additive() {
    let doc = report_for("table1_row2_palindrome.smt2", &["--no-absint"]);
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(9));
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("sat"));
    // The key stays present (additive schema) but is null when opted out.
    assert_eq!(doc.get("absint"), Some(&Json::Null));
}
