//! SMT-LIB v2 lexer.

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// A symbol (identifier or operator name like `str.++`).
    Symbol(String),
    /// A keyword (`:status`, `:named`, …).
    Keyword(String),
    /// A string literal with SMT-LIB `""` escaping already resolved.
    StringLit(String),
    /// A non-negative integer numeral.
    Numeral(u64),
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes SMT-LIB source. Handles `;` line comments, `""`-escaped
/// string literals, keywords, numerals, and symbols (including dotted
/// names like `str.len` and quoted symbols `|…|`).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            position: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'"' {
                        // `""` is an escaped quote; a lone `"` terminates.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                            s.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::StringLit(s));
            }
            ':' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && is_symbol_char(bytes[i]) {
                    i += 1;
                }
                if i == start {
                    return Err(LexError {
                        position: start,
                        message: "empty keyword".into(),
                    });
                }
                out.push(Token::Keyword(src[start..i].to_string()));
            }
            '|' => {
                let start = i;
                i += 1;
                let sym_start = i;
                while i < bytes.len() && bytes[i] != b'|' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        position: start,
                        message: "unterminated quoted symbol".into(),
                    });
                }
                out.push(Token::Symbol(src[sym_start..i].to_string()));
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text.parse::<u64>().map_err(|_| LexError {
                    position: start,
                    message: format!("numeral {text} out of range"),
                })?;
                out.push(Token::Numeral(n));
            }
            _ if is_symbol_char(bytes[i]) => {
                let start = i;
                while i < bytes.len() && is_symbol_char(bytes[i]) {
                    i += 1;
                }
                out.push(Token::Symbol(src[start..i].to_string()));
            }
            _ => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn is_symbol_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"~!@$%^&*_-+=<>.?/".contains(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_script() {
        let toks = lex("(assert (= x \"hi\"))").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Symbol("assert".into()),
                Token::LParen,
                Token::Symbol("=".into()),
                Token::Symbol("x".into()),
                Token::StringLit("hi".into()),
                Token::RParen,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn dotted_symbols_and_numerals() {
        let toks = lex("(str.indexof t s 0)").unwrap();
        assert!(toks.contains(&Token::Symbol("str.indexof".into())));
        assert!(toks.contains(&Token::Numeral(0)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("; a comment\n(check-sat) ; trailing\n").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Symbol("check-sat".into()),
                Token::RParen
            ]
        );
    }

    #[test]
    fn string_escape_doubles_quotes() {
        let toks = lex("\"say \"\"hi\"\"\"").unwrap();
        assert_eq!(toks, vec![Token::StringLit("say \"hi\"".into())]);
    }

    #[test]
    fn keywords() {
        let toks = lex("(set-info :status sat)").unwrap();
        assert!(toks.contains(&Token::Keyword("status".into())));
    }

    #[test]
    fn quoted_symbols() {
        let toks = lex("|hello world|").unwrap();
        assert_eq!(toks, vec![Token::Symbol("hello world".into())]);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("|unterminated").is_err());
        assert!(lex("{").is_err());
    }
}
