//! Annealing temperature (β = 1/T) schedules.

use qsmt_qubo::CompiledQubo;
use serde::{Deserialize, Serialize};

/// An inverse-temperature schedule for simulated annealing.
///
/// The annealer performs one full sweep over the variables at each β in the
/// realized schedule, moving from the hot end (small β, near-random walk) to
/// the cold end (large β, near-greedy descent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BetaSchedule {
    /// β interpolated geometrically between `beta_min` and `beta_max` over
    /// `sweeps` steps — the default, matching D-Wave's neal sampler.
    Geometric {
        /// Hot-end inverse temperature.
        beta_min: f64,
        /// Cold-end inverse temperature.
        beta_max: f64,
        /// Number of sweeps (schedule points).
        sweeps: usize,
    },
    /// β interpolated linearly between `beta_min` and `beta_max`.
    Linear {
        /// Hot-end inverse temperature.
        beta_min: f64,
        /// Cold-end inverse temperature.
        beta_max: f64,
        /// Number of sweeps (schedule points).
        sweeps: usize,
    },
    /// An explicit list of β values, one sweep each.
    Custom(Vec<f64>),
}

impl BetaSchedule {
    /// Default geometric schedule with a β range derived from the model's
    /// coefficient scale, following the heuristic used by D-Wave's simulated
    /// annealer:
    ///
    /// * hot: a flip of the *largest* possible |ΔE| is accepted with
    ///   probability 1/2 ⇒ `beta_min = ln 2 / max|ΔE|`;
    /// * cold: a flip over the *smallest* barrier is accepted with
    ///   probability 1/100 ⇒ `beta_max = ln 100 / min|coeff|`.
    ///
    /// Degenerate models — all-zero coefficients, or coefficients that are
    /// NaN/infinite or so extreme that the derived β endpoints leave
    /// `(0, ∞)` — get a fixed `[0.1, 1.0]` range so the sampler still
    /// terminates instead of panicking in [`BetaSchedule::realize`] or
    /// poisoning the acceptance tables.
    pub fn auto(compiled: &CompiledQubo, sweeps: usize) -> Self {
        let max_delta = compiled.max_flip_magnitude();
        let min_coeff = compiled.min_nonzero_magnitude();
        let derived = match (max_delta.is_finite() && max_delta > 0.0, min_coeff) {
            (true, Some(min_c)) if min_c.is_finite() && min_c > 0.0 => {
                let hot = (2.0f64).ln() / max_delta;
                let cold = (100.0f64).ln() / min_c;
                // Keep the range ordered even for pathological models where
                // min_c is huge relative to max_delta.
                Some((hot.min(cold), cold.max(hot * 2.0)))
            }
            _ => None,
        };
        // NaN fails every comparison, so a poisoned endpoint also lands in
        // the fallback.
        let (beta_min, beta_max) = match derived {
            Some((lo, hi)) if lo > 0.0 && hi.is_finite() && lo <= hi => (lo, hi),
            _ => (0.1, 1.0),
        };
        BetaSchedule::Geometric {
            beta_min,
            beta_max,
            sweeps,
        }
    }

    /// Number of sweeps this schedule realizes.
    pub fn len(&self) -> usize {
        match self {
            BetaSchedule::Geometric { sweeps, .. } | BetaSchedule::Linear { sweeps, .. } => *sweeps,
            BetaSchedule::Custom(v) => v.len(),
        }
    }

    /// True when the schedule realizes no sweeps.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the schedule into a β-per-sweep vector.
    ///
    /// # Panics
    /// Panics if a parametric schedule has a non-positive β endpoint or
    /// `beta_min > beta_max`.
    pub fn realize(&self) -> Vec<f64> {
        match self {
            BetaSchedule::Geometric {
                beta_min,
                beta_max,
                sweeps,
            } => {
                assert!(
                    *beta_min > 0.0 && *beta_max > 0.0,
                    "geometric schedule requires positive β"
                );
                assert!(beta_min <= beta_max, "beta_min must be ≤ beta_max");
                match sweeps {
                    0 => Vec::new(),
                    1 => vec![*beta_max],
                    _ => {
                        let ratio = (beta_max / beta_min).powf(1.0 / (*sweeps as f64 - 1.0));
                        let mut betas = Vec::with_capacity(*sweeps);
                        let mut b = *beta_min;
                        for _ in 0..*sweeps {
                            betas.push(b);
                            b *= ratio;
                        }
                        betas
                    }
                }
            }
            BetaSchedule::Linear {
                beta_min,
                beta_max,
                sweeps,
            } => {
                assert!(beta_min <= beta_max, "beta_min must be ≤ beta_max");
                match sweeps {
                    0 => Vec::new(),
                    1 => vec![*beta_max],
                    _ => (0..*sweeps)
                        .map(|i| {
                            beta_min + (beta_max - beta_min) * i as f64 / (*sweeps as f64 - 1.0)
                        })
                        .collect(),
                }
            }
            BetaSchedule::Custom(v) => v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsmt_qubo::QuboModel;

    #[test]
    fn geometric_endpoints_and_monotonicity() {
        let s = BetaSchedule::Geometric {
            beta_min: 0.1,
            beta_max: 10.0,
            sweeps: 50,
        };
        let b = s.realize();
        assert_eq!(b.len(), 50);
        assert!((b[0] - 0.1).abs() < 1e-9);
        assert!((b[49] - 10.0).abs() < 1e-6);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn linear_endpoints_and_spacing() {
        let s = BetaSchedule::Linear {
            beta_min: 1.0,
            beta_max: 3.0,
            sweeps: 5,
        };
        assert_eq!(s.realize(), vec![1.0, 1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    fn single_sweep_uses_cold_end() {
        let s = BetaSchedule::Geometric {
            beta_min: 0.5,
            beta_max: 7.0,
            sweeps: 1,
        };
        assert_eq!(s.realize(), vec![7.0]);
    }

    #[test]
    fn zero_sweeps_realizes_empty() {
        let s = BetaSchedule::Linear {
            beta_min: 1.0,
            beta_max: 2.0,
            sweeps: 0,
        };
        assert!(s.realize().is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn auto_schedule_covers_model_scale() {
        let mut m = QuboModel::new(3);
        m.add_linear(0, -4.0);
        m.add_quadratic(0, 1, 0.5);
        let c = qsmt_qubo::CompiledQubo::compile(&m);
        if let BetaSchedule::Geometric {
            beta_min, beta_max, ..
        } = BetaSchedule::auto(&c, 100)
        {
            // Hot enough to cross the largest barrier often...
            assert!(beta_min <= (2.0f64).ln() / 4.5 + 1e-9);
            // ...cold enough to freeze the smallest coefficient.
            assert!(beta_max >= (100.0f64).ln() / 0.5 - 1e-9);
        } else {
            panic!("auto must produce a geometric schedule");
        }
    }

    #[test]
    fn auto_schedule_handles_zero_model() {
        let c = qsmt_qubo::CompiledQubo::compile(&QuboModel::new(4));
        let b = BetaSchedule::auto(&c, 10).realize();
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn auto_schedule_survives_nonfinite_coefficients() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut m = QuboModel::new(2);
            m.add_linear(0, bad);
            m.add_quadratic(0, 1, 1.0);
            let c = qsmt_qubo::CompiledQubo::compile(&m);
            let b = BetaSchedule::auto(&c, 8).realize();
            assert_eq!(b.len(), 8, "coeff {bad}");
            assert!(
                b.iter().all(|v| v.is_finite() && *v > 0.0),
                "coeff {bad} produced {b:?}"
            );
        }
    }

    #[test]
    fn auto_schedule_survives_extreme_magnitudes() {
        // Endpoints derived from f64::MAX-scale deltas underflow toward 0;
        // the guard must keep every realized β positive and finite.
        let mut m = QuboModel::new(2);
        m.add_linear(0, f64::MAX);
        m.add_linear(1, f64::MAX);
        m.add_quadratic(0, 1, f64::MAX);
        let c = qsmt_qubo::CompiledQubo::compile(&m);
        let b = BetaSchedule::auto(&c, 8).realize();
        assert!(b.iter().all(|v| v.is_finite() && *v > 0.0), "{b:?}");
    }

    #[test]
    #[should_panic(expected = "beta_min must be ≤ beta_max")]
    fn inverted_range_panics() {
        BetaSchedule::Linear {
            beta_min: 2.0,
            beta_max: 1.0,
            sweeps: 3,
        }
        .realize();
    }

    #[test]
    fn custom_schedule_passes_through() {
        let s = BetaSchedule::Custom(vec![0.3, 0.7, 2.0]);
        assert_eq!(s.realize(), vec![0.3, 0.7, 2.0]);
        assert_eq!(s.len(), 3);
    }
}
